package admin_test

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admin"
	"repro/internal/core"
	"repro/internal/typedparams"
)

// TestStressMixedLoadWithAdminChurn hammers the daemon with concurrent
// management clients running full lifecycles while the admin connection
// continuously resizes the workerpool and rewrites logging settings. It
// passes when nothing deadlocks, no operation fails unexpectedly, and
// the daemon stays coherent afterwards.
func TestStressMixedLoadWithAdminChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	td := startDaemon(t)

	const (
		clients   = 6
		cyclesPer = 25
	)
	var failures atomic.Int64
	var wg sync.WaitGroup

	// Management load.
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			conn, err := core.Open("test+unix:///default?socket=" +
				strings.ReplaceAll(td.mgmtSock, "/", "%2F"))
			if err != nil {
				t.Errorf("client %d: open: %v", id, err)
				failures.Add(1)
				return
			}
			defer conn.Close()
			name := fmt.Sprintf("stress%d", id)
			xml := fmt.Sprintf(`<domain type='test'><name>%s</name><memory unit='MiB'>64</memory><vcpu>1</vcpu><os><type>hvm</type></os></domain>`, name)
			dom, err := conn.DefineDomain(xml)
			if err != nil {
				t.Errorf("client %d: define: %v", id, err)
				failures.Add(1)
				return
			}
			for c := 0; c < cyclesPer; c++ {
				ops := []func() error{
					dom.Create,
					dom.Suspend,
					dom.Resume,
					func() error { _, err := dom.Stats(); return err },
					func() error { _, err := dom.CreateSnapshot(""); return err },
					dom.Destroy,
				}
				for _, op := range ops {
					if err := op(); err != nil {
						t.Errorf("client %d cycle %d: %v", id, c, err)
						failures.Add(1)
						return
					}
				}
			}
		}(i)
	}

	// Admin churn in parallel.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			set := typedparams.NewList()
			set.AddUInt(admin.FieldMaxWorkers, uint32(4+i%12)) //nolint:errcheck
			set.AddUInt(admin.FieldPrioWorkers, uint32(i%4))   //nolint:errcheck
			if err := td.adm.SetThreadpoolParams("govirtd", set); err != nil {
				t.Errorf("admin churn %d: %v", i, err)
				failures.Add(1)
				return
			}
			if err := td.adm.SetLoggingFilters(fmt.Sprintf("%d:daemon %d:rpc", i%4+1, (i+1)%4+1)); err != nil {
				t.Errorf("log churn %d: %v", i, err)
				failures.Add(1)
				return
			}
			if _, err := td.adm.ListClients("govirtd"); err != nil {
				t.Errorf("client list churn %d: %v", i, err)
				failures.Add(1)
				return
			}
		}
	}()

	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d failures under stress", failures.Load())
	}
	// The daemon is still coherent: workerpool params readable, within
	// bounds, and no clients leaked (they all closed).
	params, err := td.adm.ThreadpoolParams("govirtd")
	if err != nil {
		t.Fatal(err)
	}
	min, _ := params.GetUInt(admin.FieldMinWorkers)
	max, _ := params.GetUInt(admin.FieldMaxWorkers)
	if min > max {
		t.Fatalf("pool limits incoherent after stress: min=%d max=%d", min, max)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		limits, err := td.adm.ClientLimits("govirtd")
		if err != nil {
			t.Fatal(err)
		}
		cur, _ := limits.GetUInt(admin.FieldCurrentClients)
		if cur == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d clients leaked", cur)
		}
		time.Sleep(time.Millisecond)
	}
}
