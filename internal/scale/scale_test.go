package scale

import (
	"testing"
	"time"

	"repro/internal/drivers/remote"
	drvtest "repro/internal/drivers/test"
	"repro/internal/fleet"
	"repro/internal/logging"
)

func init() {
	drvtest.Register(logging.NewQuiet(logging.Error))
	remote.Register()
}

// TestScaleSmallFleet brings up a 10-daemon fleet over memnet, seeds it,
// and exercises the full measurement surface the T8 benchmark records.
func TestScaleSmallFleet(t *testing.T) {
	f, err := Launch(Options{
		Hosts:          10,
		DomainsPerHost: 20,
		PollInterval:   time.Hour, // refreshes driven explicitly
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	defer f.Close()

	if got := len(f.Names); got != 10 {
		t.Fatalf("Names = %d, want 10", got)
	}
	if f.SettleTime <= 0 {
		t.Fatalf("SettleTime = %v, want > 0", f.SettleTime)
	}
	if err := f.SeedDomains(); err != nil {
		t.Fatalf("SeedDomains: %v", err)
	}
	if got := f.Domains(); got != 200 {
		t.Fatalf("Domains = %d, want 200", got)
	}

	lats, err := f.ScheduleProbes(16)
	if err != nil {
		t.Fatalf("ScheduleProbes: %v", err)
	}
	if len(lats) != 16 {
		t.Fatalf("got %d latencies, want 16", len(lats))
	}
	if p99 := Percentile(lats, 99); p99 <= 0 {
		t.Fatalf("p99 = %v, want > 0", p99)
	}

	// Probes landed through the scheduler, so the fleet now carries more
	// active domains than the seed alone.
	f.Reg.RefreshNow()
	if got := f.Domains(); got != 216 {
		t.Fatalf("Domains after probes = %d, want 216", got)
	}

	planDur, moves := f.PlanRebalance(fleet.RebalanceOptions{SkewThreshold: 0.01})
	if planDur <= 0 {
		t.Fatalf("plan duration = %v, want > 0", planDur)
	}
	_ = moves // a near-balanced fleet may legitimately need none

	if b := f.RegistryBytes(); b == 0 {
		t.Fatalf("RegistryBytes = 0, want > 0")
	}
}

func TestScalePercentile(t *testing.T) {
	lats := []time.Duration{5, 1, 4, 2, 3} // sorted: 1..5
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{50, 3}, {99, 5}, {100, 5}, {1, 1},
	}
	for _, c := range cases {
		if got := Percentile(lats, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 99); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
}
