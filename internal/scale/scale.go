// Package scale is the mega-fleet simulation harness: it stands up N
// fake-hypervisor daemons in one process — each a real govirtd instance
// with the full RPC stack, served over in-memory transports (memnet) —
// seeds them with domains, and drives them through a fleet.Registry
// exactly as virtfleetx drives real daemons. It exists to measure how
// the management layer behaves three orders of magnitude past the
// hand-run examples: 1,000 daemons / 100,000 domains is the design
// point (ROADMAP open item 2), and the T8 benchmark tier records the
// 10/100/1,000-host curve it produces.
package scale

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/daemon"
	"repro/internal/fleet"
	"repro/internal/logging"
)

// Options sizes a simulated fleet.
type Options struct {
	Hosts          int           // simulated daemons (default 10)
	DomainsPerHost int           // seeded domains per daemon (default 100)
	DomainMemMiB   int           // per-domain memory (default 256)
	DomainVCPUs    int           // per-domain vCPUs (default 1)
	PollInterval   time.Duration // registry poll interval (default 2s)
	Workers        int           // registry poll worker fan-out (default: registry default)
	SeedFanout     int           // concurrent hosts while seeding (default 32)
	Policy         string        // placement policy name (default "spread")
	// DisableWatch runs the registry in legacy interval-polling mode
	// instead of the default watch-stream reconcile loop; benchmarks use
	// it to measure the poll-vs-push traffic difference.
	DisableWatch bool
	Log          *logging.Logger
}

func (o *Options) applyDefaults() {
	if o.Hosts <= 0 {
		o.Hosts = 10
	}
	if o.DomainsPerHost < 0 {
		o.DomainsPerHost = 0
	} else if o.DomainsPerHost == 0 {
		o.DomainsPerHost = 100
	}
	if o.DomainMemMiB <= 0 {
		o.DomainMemMiB = 256
	}
	if o.DomainVCPUs <= 0 {
		o.DomainVCPUs = 1
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 2 * time.Second
	}
	if o.SeedFanout <= 0 {
		o.SeedFanout = 32
	}
	if o.Log == nil {
		o.Log = logging.NewQuiet(logging.Error)
	}
}

// Fleet is a running simulated fleet: the daemons, the registry driving
// them, and the measurements taken while bringing it up.
type Fleet struct {
	Opts  Options
	Reg   *fleet.Registry
	Names []string // registry host names, configuration order

	// SettleTime is how long the registry took from Start to every
	// host's first connection resolving.
	SettleTime time.Duration
	// SeedTime is how long seeding DomainsPerHost×Hosts domains took
	// (zero until SeedDomains runs).
	SeedTime time.Duration

	daemons []*daemon.Daemon
	seq     int64
}

// launchSeq disambiguates memnet endpoint names across multiple fleets
// in one process (benchmark tiers run back to back).
var launchSeq atomic.Int64

// Launch starts the daemons and the registry and waits for the fleet to
// settle. Callers must have registered the test and remote drivers.
func Launch(opts Options) (*Fleet, error) {
	opts.applyDefaults()
	f := &Fleet{Opts: opts, seq: launchSeq.Add(1)}
	uris := make([]string, 0, opts.Hosts)
	for i := 0; i < opts.Hosts; i++ {
		name := f.endpoint(i)
		d := daemon.New(opts.Log)
		srv, err := d.AddServer("govirtd", 2, 8, 2, daemon.ClientLimits{})
		if err != nil {
			f.Close()
			return nil, err
		}
		srv.AddProgram(daemon.NewRemoteProgram(srv))
		if err := srv.ListenMem(name, daemon.ServiceConfig{}); err != nil {
			f.Close()
			return nil, err
		}
		f.daemons = append(f.daemons, d)
		uris = append(uris, fmt.Sprintf("test+mem://%s/empty", name))
	}

	policy, err := fleet.PolicyByName(opts.Policy)
	if err != nil {
		f.Close()
		return nil, err
	}
	reg, err := fleet.New(fleet.Config{
		Hosts:        uris,
		PollInterval: opts.PollInterval,
		Workers:      opts.Workers,
		Policy:       policy,
		DisableWatch: opts.DisableWatch,
		Log:          opts.Log,
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	f.Reg = reg
	f.Names = reg.Hosts()

	start := time.Now()
	reg.Start()
	if up := reg.WaitSettled(2 * time.Minute); up != opts.Hosts {
		f.Close()
		return nil, fmt.Errorf("scale: only %d/%d hosts settled up", up, opts.Hosts)
	}
	f.SettleTime = time.Since(start)
	return f, nil
}

// endpoint names one daemon's memnet listener.
func (f *Fleet) endpoint(i int) string {
	return fmt.Sprintf("sim%d-node%04d", f.seq, i)
}

// Close tears down the registry and every daemon.
func (f *Fleet) Close() {
	if f.Reg != nil {
		f.Reg.Close()
	}
	var wg sync.WaitGroup
	for _, d := range f.daemons {
		wg.Add(1)
		go func(d *daemon.Daemon) {
			defer wg.Done()
			d.Shutdown()
		}(d)
	}
	wg.Wait()
}

// domainXML builds the minimal workload description the fake
// hypervisor simulates.
func domainXML(name string, memMiB, vcpus int) string {
	return fmt.Sprintf(`<domain type='test'>
  <name>%s</name>
  <description>cpu_util=0.2 dirty_pages_sec=500</description>
  <memory unit='MiB'>%d</memory>
  <vcpu>%d</vcpu>
  <os><type arch='x86_64'>hvm</type></os>
</domain>`, name, memMiB, vcpus)
}

// SeedDomains defines and starts DomainsPerHost domains on every host
// through the registry's own connections, SeedFanout hosts at a time,
// then refreshes the inventories so the registry sees what it seeded.
// (Daemon-side driver state is per client connection, so the fleet's
// domains must be created over the connections the fleet holds.)
func (f *Fleet) SeedDomains() error {
	start := time.Now()
	sem := make(chan struct{}, f.Opts.SeedFanout)
	errCh := make(chan error, len(f.Names))
	var wg sync.WaitGroup
	for hi, name := range f.Names {
		wg.Add(1)
		sem <- struct{}{}
		go func(hi int, name string) {
			defer wg.Done()
			defer func() { <-sem }()
			conn, err := f.Reg.Host(name)
			if err != nil {
				errCh <- fmt.Errorf("scale: host %s: %w", name, err)
				return
			}
			for di := 0; di < f.Opts.DomainsPerHost; di++ {
				xml := domainXML(fmt.Sprintf("d%04d-%04d", hi, di),
					f.Opts.DomainMemMiB, f.Opts.DomainVCPUs)
				if _, err := conn.CreateDomainXML(xml); err != nil {
					errCh <- fmt.Errorf("scale: seed host %s domain %d: %w", name, di, err)
					return
				}
			}
			errCh <- nil
		}(hi, name)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return err
		}
	}
	f.Reg.RefreshNow()
	f.SeedTime = time.Since(start)
	return nil
}

// ScheduleProbes places n probe domains through the scheduler and
// returns the per-placement wall-clock latencies in call order.
func (f *Fleet) ScheduleProbes(n int) ([]time.Duration, error) {
	lats := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		xml := domainXML(fmt.Sprintf("probe%d-%04d", f.seq, i),
			f.Opts.DomainMemMiB, f.Opts.DomainVCPUs)
		t0 := time.Now()
		if _, err := f.Reg.Schedule(xml); err != nil {
			return lats, fmt.Errorf("scale: probe %d: %w", i, err)
		}
		lats = append(lats, time.Since(t0))
	}
	return lats, nil
}

// PlanRebalance snapshots the fleet inventory and runs the pure
// rebalance planner over it — the full planning operation an operator's
// `virtfleetx rebalance --dry-run` performs — returning how long the
// snapshot+plan took and how many moves it proposed.
func (f *Fleet) PlanRebalance(opts fleet.RebalanceOptions) (time.Duration, int) {
	t0 := time.Now()
	moves, _, _, _ := fleet.PlanRebalance(f.Reg.Inventory(), opts)
	return time.Since(t0), len(moves)
}

// RegistryBytes estimates the registry's retained per-host working set:
// the cached inventory records plus the equally sized bulk-sweep
// scratch, and the record name strings. It is deliberately an
// accounting walk, not a heap measurement, so the number isolates the
// registry from the simulated daemons sharing the process.
func (f *Fleet) RegistryBytes() uint64 {
	var total uint64
	const perRecord = uint64(unsafe.Sizeof(fleet.DomainRecord{}))
	const perHost = uint64(unsafe.Sizeof(fleet.HostInventory{}))
	for _, inv := range f.Reg.Inventory() {
		// ×2: the published HostInventory and the retained sweep scratch
		// both hold a full row set.
		total += perHost + 2*perRecord*uint64(len(inv.Domains))
		for i := range inv.Domains {
			total += 2 * uint64(len(inv.Domains[i].Name))
		}
	}
	return total
}

// Domains returns the fleet-wide active domain count from the cached
// summaries.
func (f *Fleet) Domains() int {
	n := 0
	for _, s := range f.Reg.Summaries() {
		n += s.ActiveDomains
	}
	return n
}

// Percentile returns the p-th percentile (0..100) of the given latency
// samples using nearest-rank on a sorted copy.
func Percentile(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(float64(len(s))*p/100+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
