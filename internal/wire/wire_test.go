// Package wire_test verifies that every payload structure of the remote
// protocol survives an XDR round trip unchanged — the compatibility
// property the whole client/daemon split depends on.
package wire_test

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// roundTrip marshals v, unmarshals into a fresh value of the same type
// and compares.
func roundTrip(t *testing.T, v interface{}) {
	t.Helper()
	data, err := rpc.Marshal(v)
	if err != nil {
		t.Fatalf("marshal %T: %v", v, err)
	}
	out := reflect.New(reflect.TypeOf(v).Elem()).Interface()
	if err := rpc.Unmarshal(data, out); err != nil {
		t.Fatalf("unmarshal %T: %v", v, err)
	}
	if !payloadEqual(v, out) {
		t.Fatalf("%T round trip mismatch:\n in: %+v\nout: %+v", v, v, out)
	}
}

// payloadEqual is DeepEqual with nil/empty slice equivalence, since XDR
// cannot distinguish them.
func payloadEqual(a, b interface{}) bool {
	va, vb := reflect.ValueOf(a).Elem(), reflect.ValueOf(b).Elem()
	for i := 0; i < va.NumField(); i++ {
		fa, fb := va.Field(i), vb.Field(i)
		if fa.Kind() == reflect.Slice && fa.Len() == 0 && fb.Len() == 0 {
			continue
		}
		if !reflect.DeepEqual(fa.Interface(), fb.Interface()) {
			return false
		}
	}
	return true
}

func TestAllPayloadsRoundTrip(t *testing.T) {
	payloads := []interface{}{
		&wire.ConnectOpenArgs{URI: "qsim+tcp://host:16509/system?x=1"},
		&wire.NameArgs{Name: "dom"},
		&wire.UUIDArgs{UUID: "11111111-2222-3333-4444-555555555555"},
		&wire.XMLArgs{XML: "<domain type='qsim'><name>x</name></domain>"},
		&wire.StringReply{Value: "banner"},
		&wire.BoolReply{Value: true},
		&wire.DomainListArgs{Flags: 3},
		&wire.NameListReply{Names: []string{"a", "b", "c"}},
		&wire.DomainMetaReply{Meta: wire.DomainMeta{Name: "d", UUID: "u", ID: -1}},
		&wire.DomainInfoReply{State: 1, MaxMemKiB: 1 << 40, MemKiB: 512, VCPUs: 8, CPUTimeNs: 42},
		&wire.DomainStatsReply{State: 5, CPUTimeNs: 1, RdBytes: 2, WrBytes: 3, DirtyPages: 99},
		&wire.SetMemoryArgs{Name: "d", MemKiB: 1024},
		&wire.SetVCPUsArgs{Name: "d", VCPUs: 4},
		&wire.NodeInfoReply{Model: "sim", MemoryKiB: 1 << 30, CPUs: 64, MHz: 2800, NUMANodes: 2, Sockets: 2, Cores: 16, Threads: 2},
		&wire.LeasesReply{Leases: []wire.DHCPLease{{MAC: "52:54:00:00:00:01", IP: "10.0.0.2", Hostname: "g"}}},
		&wire.PoolInfoReply{Active: true, CapacityKiB: 100, AllocationKiB: 40, AvailableKiB: 60},
		&wire.VolArgs{Pool: "p", Name: "v"},
		&wire.VolCreateArgs{Pool: "p", XML: "<volume/>"},
		&wire.EventRegisterArgs{Domain: "d"},
		&wire.EventRegisterReply{CallbackID: 7},
		&wire.EventDeregisterArgs{CallbackID: 7},
		&wire.LifecycleEvent{CallbackID: 1, Type: 3, Domain: "d", UUID: "u", Detail: "x", Seq: 9},
		&wire.AuthListReply{Mechanisms: []string{"SIM-PLAIN"}},
		&wire.SASLStartArgs{Mechanism: "SIM-PLAIN", Data: []byte{1, 0, 2}},
		&wire.SASLStartReply{Complete: true, Data: []byte{}},
		&wire.SnapshotCreateArgs{Domain: "d", XML: "<domainsnapshot/>"},
		&wire.SnapshotArgs{Domain: "d", Name: "s"},
		&wire.MigratePrepareArgs{Domain: "d", TotalPages: 1 << 20, Streams: 8},
		&wire.MigratePrepareReply{Cookie: 0xfeed},
		&wire.MigratePagesArgs{Cookie: 0xfeed, Stream: 3, Round: 2, Pages: 16384, Data: []byte{9, 8, 7}},
		&wire.MigrateFinishArgs{Cookie: 0xfeed, Commit: true},
	}
	for _, p := range payloads {
		roundTrip(t, p)
	}
}

func TestProcedureNumbersAreStable(t *testing.T) {
	// Wire numbers are protocol constants; a reorder of the const block
	// would silently break compatibility. Pin the anchors.
	pins := map[string]uint32{
		"ConnectOpen":       1,
		"DomainDefine":      11,
		"NetworkList":       24,
		"PoolList":          32,
		"EventRegister":     43,
		"AuthList":          45,
		"SnapshotCreate":    47,
		"ManagedSave":       52,
		"ManagedSaveRemove": 54,
	}
	got := map[string]uint32{
		"ConnectOpen":       wire.ProcConnectOpen,
		"DomainDefine":      wire.ProcDomainDefine,
		"NetworkList":       wire.ProcNetworkList,
		"PoolList":          wire.ProcPoolList,
		"EventRegister":     wire.ProcEventRegister,
		"AuthList":          wire.ProcAuthList,
		"SnapshotCreate":    wire.ProcSnapshotCreate,
		"ManagedSave":       wire.ProcManagedSave,
		"ManagedSaveRemove": wire.ProcManagedSaveRemove,
	}
	for name, want := range pins {
		if got[name] != want {
			t.Errorf("procedure %s renumbered: %d, want %d", name, got[name], want)
		}
	}
}

// TestDomainInfoRowMatchesCore pins the zero-conversion contract of the
// bulk monitoring procedures: the daemon marshals []core.NamedDomainInfo
// and the remote driver unmarshals into it, with wire.DomainInfoRow
// documenting the layout. If the encodings ever diverge, the fast path
// silently corrupts sweeps — so byte equality is asserted here.
func TestDomainInfoRowMatchesCore(t *testing.T) {
	wireRows := wire.DomainListInfoReply{Domains: []wire.DomainInfoRow{
		{Name: "vm-1", State: int64(core.DomainRunning), MaxMemKiB: 1 << 40, MemKiB: 4096, VCPUs: 8, CPUTimeNs: 123456789},
		{Name: "", State: int64(core.DomainShutoff), MaxMemKiB: 0, MemKiB: 0, VCPUs: 0, CPUTimeNs: 0},
		{Name: "padding-check", State: int64(core.DomainCrashed), MaxMemKiB: 7, MemKiB: 3, VCPUs: 2, CPUTimeNs: 1},
	}}
	coreRows := struct{ Domains []core.NamedDomainInfo }{[]core.NamedDomainInfo{
		{Name: "vm-1", Info: core.DomainInfo{State: core.DomainRunning, MaxMemKiB: 1 << 40, MemKiB: 4096, VCPUs: 8, CPUTimeNs: 123456789}},
		{Name: "", Info: core.DomainInfo{State: core.DomainShutoff}},
		{Name: "padding-check", Info: core.DomainInfo{State: core.DomainCrashed, MaxMemKiB: 7, MemKiB: 3, VCPUs: 2, CPUTimeNs: 1}},
	}}
	a, err := rpc.Marshal(&wireRows)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rpc.Marshal(&coreRows)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("wire.DomainInfoRow and core.NamedDomainInfo encodings diverge:\nwire %x\ncore %x", a, b)
	}
	var back struct{ Domains []core.NamedDomainInfo }
	if err := rpc.Unmarshal(a, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Domains, coreRows.Domains) {
		t.Fatalf("decode into core rows diverges:\n in %+v\nout %+v", coreRows.Domains, back.Domains)
	}
}

func TestQuickStatsRoundTrip(t *testing.T) {
	f := func(r wire.DomainStatsReply) bool {
		data, err := rpc.Marshal(&r)
		if err != nil {
			return false
		}
		var out wire.DomainStatsReply
		if err := rpc.Unmarshal(data, &out); err != nil {
			return false
		}
		return out == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMetaRoundTrip(t *testing.T) {
	f := func(name, uuid string, id int32) bool {
		in := wire.DomainMetaReply{Meta: wire.DomainMeta{Name: name, UUID: uuid, ID: id}}
		data, err := rpc.Marshal(&in)
		if err != nil {
			return false
		}
		var out wire.DomainMetaReply
		if err := rpc.Unmarshal(data, &out); err != nil {
			return false
		}
		return out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
