package wire

import "repro/internal/rpc"

// procNames gives every remote procedure a symbolic name for metrics and
// slow-call traces. The table must grow in lockstep with the constant
// block in wire.go.
var procNames = map[uint32]string{
	ProcConnectOpen:        "ConnectOpen",
	ProcConnectClose:       "ConnectClose",
	ProcGetType:            "GetType",
	ProcGetVersion:         "GetVersion",
	ProcGetHostname:        "GetHostname",
	ProcGetCapabilities:    "GetCapabilities",
	ProcNodeGetInfo:        "NodeGetInfo",
	ProcDomainList:         "DomainList",
	ProcDomainLookupByName: "DomainLookupByName",
	ProcDomainLookupByUUID: "DomainLookupByUUID",
	ProcDomainDefine:       "DomainDefine",
	ProcDomainUndefine:     "DomainUndefine",
	ProcDomainCreate:       "DomainCreate",
	ProcDomainDestroy:      "DomainDestroy",
	ProcDomainShutdown:     "DomainShutdown",
	ProcDomainReboot:       "DomainReboot",
	ProcDomainSuspend:      "DomainSuspend",
	ProcDomainResume:       "DomainResume",
	ProcDomainGetInfo:      "DomainGetInfo",
	ProcDomainGetStats:     "DomainGetStats",
	ProcDomainGetXML:       "DomainGetXML",
	ProcDomainSetMemory:    "DomainSetMemory",
	ProcDomainSetVCPUs:     "DomainSetVCPUs",
	ProcNetworkList:        "NetworkList",
	ProcNetworkDefine:      "NetworkDefine",
	ProcNetworkUndefine:    "NetworkUndefine",
	ProcNetworkStart:       "NetworkStart",
	ProcNetworkStop:        "NetworkStop",
	ProcNetworkGetXML:      "NetworkGetXML",
	ProcNetworkIsActive:    "NetworkIsActive",
	ProcNetworkDHCPLeases:  "NetworkDHCPLeases",
	ProcPoolList:           "PoolList",
	ProcPoolDefine:         "PoolDefine",
	ProcPoolUndefine:       "PoolUndefine",
	ProcPoolStart:          "PoolStart",
	ProcPoolStop:           "PoolStop",
	ProcPoolGetXML:         "PoolGetXML",
	ProcPoolGetInfo:        "PoolGetInfo",
	ProcVolList:            "VolList",
	ProcVolCreate:          "VolCreate",
	ProcVolDelete:          "VolDelete",
	ProcVolGetXML:          "VolGetXML",
	ProcEventRegister:      "EventRegister",
	ProcEventDeregister:    "EventDeregister",
	ProcAuthList:           "AuthList",
	ProcAuthSASLStart:      "AuthSASLStart",
	ProcSnapshotCreate:     "SnapshotCreate",
	ProcSnapshotList:       "SnapshotList",
	ProcSnapshotGetXML:     "SnapshotGetXML",
	ProcSnapshotRevert:     "SnapshotRevert",
	ProcSnapshotDelete:     "SnapshotDelete",
	ProcManagedSave:        "ManagedSave",
	ProcHasManagedSave:     "HasManagedSave",
	ProcManagedSaveRemove:  "ManagedSaveRemove",
	ProcDeviceAttach:       "DeviceAttach",
	ProcDeviceDetach:       "DeviceDetach",
	ProcDomainListInfo:     "DomainListInfo",
	ProcNodeInventory:      "NodeInventory",
	ProcEventSubscribe:     "EventSubscribe",
	ProcEventUnsubscribe:   "EventUnsubscribe",
	ProcMigratePrepare:     "MigratePrepare",
	ProcMigratePages:       "MigratePages",
	ProcMigratePagePull:    "MigratePagePull",
	ProcMigrateFinish:      "MigrateFinish",
	ProcEventLifecycle:     "EventLifecycle",
	ProcEventWatch:         "EventWatch",
}

func init() {
	rpc.RegisterProcNames(rpc.ProgramRemote, procNames)
}

// ProcName returns the symbolic name of a remote procedure.
func ProcName(proc uint32) string { return rpc.ProcName(rpc.ProgramRemote, proc) }
