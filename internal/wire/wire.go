// Package wire defines the remote management protocol spoken between the
// remote driver and the daemon: procedure numbers and the XDR payload
// structures of every call and reply. Both sides import this package, so
// the protocol has a single definition.
//
// Forward compatibility follows the typed-parameter convention: calls
// whose argument set may grow carry a list of typed parameters instead of
// a fixed struct, so adding an attribute never changes a payload layout.
package wire

// Remote program procedures. Numbers are part of the protocol and must
// never be reused.
const (
	ProcConnectOpen uint32 = 1 + iota
	ProcConnectClose
	ProcGetType
	ProcGetVersion
	ProcGetHostname
	ProcGetCapabilities
	ProcNodeGetInfo
	ProcDomainList
	ProcDomainLookupByName
	ProcDomainLookupByUUID
	ProcDomainDefine
	ProcDomainUndefine
	ProcDomainCreate
	ProcDomainDestroy
	ProcDomainShutdown
	ProcDomainReboot
	ProcDomainSuspend
	ProcDomainResume
	ProcDomainGetInfo
	ProcDomainGetStats
	ProcDomainGetXML
	ProcDomainSetMemory
	ProcDomainSetVCPUs
	ProcNetworkList
	ProcNetworkDefine
	ProcNetworkUndefine
	ProcNetworkStart
	ProcNetworkStop
	ProcNetworkGetXML
	ProcNetworkIsActive
	ProcNetworkDHCPLeases
	ProcPoolList
	ProcPoolDefine
	ProcPoolUndefine
	ProcPoolStart
	ProcPoolStop
	ProcPoolGetXML
	ProcPoolGetInfo
	ProcVolList
	ProcVolCreate
	ProcVolDelete
	ProcVolGetXML
	ProcEventRegister
	ProcEventDeregister
	ProcAuthList
	ProcAuthSASLStart
	ProcSnapshotCreate
	ProcSnapshotList
	ProcSnapshotGetXML
	ProcSnapshotRevert
	ProcSnapshotDelete
	ProcManagedSave
	ProcHasManagedSave
	ProcManagedSaveRemove
	ProcDeviceAttach
	ProcDeviceDetach
	ProcDomainListInfo
	ProcNodeInventory
	ProcEventSubscribe
	ProcEventUnsubscribe
	ProcMigratePrepare
	ProcMigratePages
	ProcMigratePagePull
	ProcMigrateFinish
)

// ProcEventLifecycle is the procedure number of unsolicited lifecycle
// event messages (server → client).
const ProcEventLifecycle uint32 = 1000

// ProcEventWatch is the procedure number of watch-stream event frames
// (server → client): sequenced, queue-bounded lifecycle notifications
// established with ProcEventSubscribe.
const ProcEventWatch uint32 = 1001

// ConnectOpenArgs carries the effective URI the client wants the daemon
// to open with its server-side drivers.
type ConnectOpenArgs struct {
	URI string
}

// NameArgs addresses an object by name.
type NameArgs struct {
	Name string
}

// UUIDArgs addresses a domain by UUID.
type UUIDArgs struct {
	UUID string
}

// XMLArgs carries a definition document.
type XMLArgs struct {
	XML string
}

// StringReply returns one string.
type StringReply struct {
	Value string
}

// BoolReply returns one boolean.
type BoolReply struct {
	Value bool
}

// DomainListArgs selects which domains to list.
type DomainListArgs struct {
	Flags uint32
}

// NameListReply returns object names.
type NameListReply struct {
	Names []string
}

// DomainMeta is a domain identity tuple on the wire.
type DomainMeta struct {
	Name string
	UUID string
	ID   int32
}

// DomainMetaReply returns one domain identity.
type DomainMetaReply struct {
	Meta DomainMeta
}

// DomainInfoReply returns the compact info block.
type DomainInfoReply struct {
	State     uint32
	MaxMemKiB uint64
	MemKiB    uint64
	VCPUs     uint32
	CPUTimeNs uint64
}

// DomainStatsReply returns the extended monitoring snapshot.
type DomainStatsReply struct {
	State      uint32
	CPUTimeNs  uint64
	MemKiB     uint64
	MaxMemKiB  uint64
	VCPUs      uint32
	RdBytes    uint64
	WrBytes    uint64
	RdReqs     uint64
	WrReqs     uint64
	RxBytes    uint64
	TxBytes    uint64
	RxPkts     uint64
	TxPkts     uint64
	DirtyPages uint64
}

// SetMemoryArgs balloons a domain.
type SetMemoryArgs struct {
	Name   string
	MemKiB uint64
}

// SetVCPUsArgs adjusts a domain's vCPU count.
type SetVCPUsArgs struct {
	Name  string
	VCPUs uint32
}

// NodeInfoReply returns the host summary.
type NodeInfoReply struct {
	Model     string
	MemoryKiB uint64
	CPUs      uint32
	MHz       uint32
	NUMANodes uint32
	Sockets   uint32
	Cores     uint32
	Threads   uint32
}

// DHCPLease is one lease on the wire.
type DHCPLease struct {
	MAC      string
	IP       string
	Hostname string
}

// LeasesReply returns DHCP leases.
type LeasesReply struct {
	Leases []DHCPLease
}

// PoolInfoReply returns pool space accounting.
type PoolInfoReply struct {
	Active        bool
	CapacityKiB   uint64
	AllocationKiB uint64
	AvailableKiB  uint64
}

// VolArgs addresses a volume within a pool.
type VolArgs struct {
	Pool string
	Name string
}

// VolCreateArgs creates a volume within a pool.
type VolCreateArgs struct {
	Pool string
	XML  string
}

// EventRegisterArgs subscribes the connection to lifecycle events for
// one domain name, or all when empty.
type EventRegisterArgs struct {
	Domain string
}

// EventRegisterReply returns the server-side callback id.
type EventRegisterReply struct {
	CallbackID int32
}

// EventDeregisterArgs removes a callback.
type EventDeregisterArgs struct {
	CallbackID int32
}

// LifecycleEvent is the payload of unsolicited event messages.
type LifecycleEvent struct {
	CallbackID int32
	Type       uint32
	Domain     string
	UUID       string
	Detail     string
	Seq        uint64
}

// EventSubscribeArgs opens a watch stream on the connection: sequenced
// lifecycle events filtered to one domain name ("" for all) and an
// event-type set (empty for all), delivered as TypeEvent frames with
// the ProcEventWatch procedure number.
type EventSubscribeArgs struct {
	Domain string
	Types  []uint32
}

// EventSubscribeReply returns the server-side subscription id plus the
// effective queue bounds, so the client knows how much loss-free burst
// the stream absorbs before events start coalescing and dropping.
type EventSubscribeReply struct {
	SubscriptionID int32
	QueueDepth     uint32
	CoalesceMs     uint32
}

// EventUnsubscribeArgs tears a watch stream down.
type EventUnsubscribeArgs struct {
	SubscriptionID int32
}

// WatchEvent is the payload of watch-stream event frames. Seq is
// assigned per subscription when the event is queued and the stream
// delivers queued events in order, so a receiver that observes Seq jump
// by more than one knows events were lost (queue overflow server-side,
// or a frame lost in flight) and can run one resync sweep. A frame with
// Type 0 is a heartbeat: it carries the last assigned Seq and no event,
// closing the tail-loss window after a burst.
type WatchEvent struct {
	SubscriptionID int32
	Seq            uint64
	Type           uint32
	Domain         string
	UUID           string
	Detail         string
	BusSeq         uint64 // emitting bus's own sequence number
	Coalesced      uint32 // earlier same-domain events absorbed into this frame
}

// SnapshotCreateArgs captures a snapshot of a domain.
type SnapshotCreateArgs struct {
	Domain string
	XML    string
}

// SnapshotArgs addresses one snapshot of a domain.
type SnapshotArgs struct {
	Domain string
	Name   string
}

// DeviceArgs carries a standalone device document for attach/detach.
type DeviceArgs struct {
	Domain string
	XML    string
}

// AuthListReply advertises the authentication mechanisms the service
// requires, in preference order. Empty means none.
type AuthListReply struct {
	Mechanisms []string
}

// SASLStartArgs carries one authentication step from the client.
type SASLStartArgs struct {
	Mechanism string
	Data      []byte
}

// SASLStartReply carries the server's verdict.
type SASLStartReply struct {
	Complete bool
	Data     []byte
}

// DomainListInfoArgs selects domains for a bulk info sweep. Flags
// filters like DomainList; Names, when non-empty, restricts the sweep
// to exactly those domains instead.
type DomainListInfoArgs struct {
	Flags uint32
	Names []string
}

// DomainInfoRow pairs one domain's name with its compact info block in
// bulk monitoring replies. Field widths deliberately mirror the XDR
// encoding of core.NamedDomainInfo (int encodes as 64-bit), so the
// daemon and the remote driver encode and decode the core row type
// directly — a bulk sweep crosses the boundary with zero per-row
// conversion. TestDomainInfoRowMatchesCore pins the equivalence.
type DomainInfoRow struct {
	Name      string
	State     int64
	MaxMemKiB uint64
	MemKiB    uint64
	VCPUs     int64
	CPUTimeNs uint64
}

// DomainListInfoReply returns one row per matched domain — the bulk
// counterpart of N DomainGetInfo round trips.
type DomainListInfoReply struct {
	Domains []DomainInfoRow
}

// NodeInventoryReply returns the node summary plus every domain's info
// in a single round trip: one call replaces the NodeGetInfo +
// DomainList + N×DomainGetInfo monitoring sweep.
type NodeInventoryReply struct {
	Node    NodeInfoReply
	Domains []DomainInfoRow
}

// MigratePrepareArgs registers an inbound live migration against an
// already-defined destination domain. TotalPages sizes the receiver's
// page accounting; Streams announces how many parallel copy streams the
// source will use.
type MigratePrepareArgs struct {
	Domain     string
	TotalPages uint64
	Streams    uint32
}

// MigratePrepareReply returns the cookie scoping the transfer's
// subsequent MigratePages/MigrateFinish calls.
type MigratePrepareReply struct {
	Cookie uint64
}

// MigratePagesArgs carries one page chunk of a live migration. Pages is
// the authoritative accounting; Data is a representative payload so the
// chunk crosses the pooled frame path like real memory would. The same
// payload serves ProcMigratePages (background copy streams) and
// ProcMigratePagePull (post-copy demand faults on the priority stream).
type MigratePagesArgs struct {
	Cookie uint64
	Stream uint32
	Round  uint32
	Pages  uint64
	Data   []byte
}

// MigrateFinishArgs completes (Commit) or abandons an inbound migration.
type MigrateFinishArgs struct {
	Cookie uint64
	Commit bool
}
