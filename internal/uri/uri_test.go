package uri

import (
	"testing"
	"testing/quick"
)

func TestParseBasic(t *testing.T) {
	u, err := Parse("qemu:///system")
	if err != nil {
		t.Fatal(err)
	}
	if u.Driver != "qemu" || u.Transport != TransportNone || u.Host != "" || u.Path != "/system" {
		t.Fatalf("%+v", u)
	}
	if u.IsRemote() {
		t.Fatal("local URI classified remote")
	}
	if u.EffectiveTransport() != TransportUnix {
		t.Fatalf("effective transport %v", u.EffectiveTransport())
	}
}

func TestParseRemoteTLS(t *testing.T) {
	u, err := Parse("qemu+tls://admin@virt.example.com:16514/system?no_verify=1")
	if err != nil {
		t.Fatal(err)
	}
	if u.Driver != "qemu" || u.Transport != TransportTLS {
		t.Fatalf("%+v", u)
	}
	if u.Username != "admin" || u.Host != "virt.example.com" || u.Port != 16514 {
		t.Fatalf("%+v", u)
	}
	if v, ok := u.Param("no_verify"); !ok || v != "1" {
		t.Fatalf("params %v", u.Params)
	}
	if !u.IsRemote() {
		t.Fatal("remote URI classified local")
	}
}

func TestParseBareHostImpliesTLS(t *testing.T) {
	u, err := Parse("xen://virt.example.com/")
	if err != nil {
		t.Fatal(err)
	}
	if !u.IsRemote() || u.EffectiveTransport() != TransportTLS {
		t.Fatalf("%+v effective=%v", u, u.EffectiveTransport())
	}
}

func TestParseUnixTransport(t *testing.T) {
	u, err := Parse("lxc+unix:///?socket=/run/virtd.sock")
	if err != nil {
		t.Fatal(err)
	}
	if u.Transport != TransportUnix || !u.IsRemote() {
		t.Fatalf("%+v", u)
	}
	if v, _ := u.Param("socket"); v != "/run/virtd.sock" {
		t.Fatalf("socket param %q", v)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"/no/scheme",
		"qemu+warp://host/",    // unknown transport
		"qemu+tcp:///system",   // tcp without host
		"qemu+tls:///",         // tls without host
		"qemu+ssh:///",         // ssh without host
		"qemu://user:pw@host/", // password not supported
		"qemu://host:99999/",   // port out of range
		"qemu://host:-1/",      // negative port
		"qemu://host/?a=1&a=2", // repeated param
		"+tcp://host/",         // empty driver
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", s)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	cases := []string{
		"qemu:///system",
		"qemu+tcp://host:16509/system",
		"xen+tls://admin@xenhost:16514/",
		"lxc+unix:///?socket=%2Frun%2Fx.sock",
		"test:///default?mode=fast&seed=7",
	}
	for _, s := range cases {
		u, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		again, err := Parse(u.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", u.String(), err)
		}
		if u.Driver != again.Driver || u.Transport != again.Transport ||
			u.Username != again.Username || u.Host != again.Host ||
			u.Port != again.Port || u.Path != again.Path {
			t.Fatalf("round trip mismatch: %+v vs %+v", u, again)
		}
		if len(u.Params) != len(again.Params) {
			t.Fatalf("params changed: %v vs %v", u.Params, again.Params)
		}
		for k, v := range u.Params {
			if again.Params[k] != v {
				t.Fatalf("param %q lost in round trip", k)
			}
		}
	}
}

func TestAliases(t *testing.T) {
	a := Aliases{"prod": "qemu+tls://virt1.example.com/system"}
	u, err := a.Resolve("prod")
	if err != nil {
		t.Fatal(err)
	}
	if u.Host != "virt1.example.com" || u.Transport != TransportTLS {
		t.Fatalf("%+v", u)
	}
	u, err = a.Resolve("test:///default")
	if err != nil || u.Driver != "test" {
		t.Fatalf("non-alias resolve: %+v %v", u, err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	drivers := []string{"qemu", "xen", "lxc", "test"}
	transports := []Transport{TransportNone, TransportUnix, TransportTCP, TransportTLS, TransportSSH}
	f := func(d, tr, port uint8, hasUser bool) bool {
		u := &URI{
			Driver:    drivers[int(d)%len(drivers)],
			Transport: transports[int(tr)%len(transports)],
			Path:      "/system",
			Params:    map[string]string{},
		}
		switch u.Transport {
		case TransportTCP, TransportTLS, TransportSSH:
			u.Host = "host.example.com"
			u.Port = int(port) + 1
		}
		if hasUser && u.Host != "" {
			u.Username = "admin"
		}
		parsed, err := Parse(u.String())
		if err != nil {
			return false
		}
		return parsed.Driver == u.Driver && parsed.Transport == u.Transport &&
			parsed.Host == u.Host && parsed.Port == u.Port &&
			parsed.Username == u.Username && parsed.Path == u.Path
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParseAliases(t *testing.T) {
	text := `
# client configuration
uri_aliases = [
  "prod=qsim+tcp://virt1.example.com/system",
  "lab=test:///default",
]
`
	a, err := ParseAliases(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 2 || a["prod"] == "" || a["lab"] == "" {
		t.Fatalf("%v", a)
	}
	u, err := a.Resolve("prod")
	if err != nil || u.Host != "virt1.example.com" {
		t.Fatalf("%+v %v", u, err)
	}
}

func TestParseAliasesErrors(t *testing.T) {
	bad := []string{
		"something = [",                          // wrong key
		"uri_aliases = [\n\"noequals\",\n]",      // missing '='
		"uri_aliases = [\n\"a:b=test:///x\",\n]", // metacharacter in name
		"uri_aliases = [\n\"x=://bad\",\n]",      // invalid target URI
		"uri_aliases = [\n\"x=test:///ok\",",     // unterminated list
		"uri_aliases = \"not-a-list\"",           // not a list
	}
	for _, text := range bad {
		if _, err := ParseAliases(text); err == nil {
			t.Errorf("ParseAliases(%q) accepted", text)
		}
	}
	a, err := ParseAliases("")
	if err != nil || len(a) != 0 {
		t.Fatalf("empty config: %v %v", a, err)
	}
}
