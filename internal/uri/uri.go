// Package uri implements libvirt-style connection URIs of the form
//
//	driver[+transport]://[username@][hostname][:port]/[path][?extraparameters]
//
// The scheme's driver part selects which hypervisor driver to probe, the
// optional transport part selects how a remote daemon is reached, and the
// path carries driver-specific data ("/system", "/session").
package uri

import (
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"
)

// Transport identifies how a connection reaches the daemon.
type Transport string

// Supported transports. Empty means local/in-process dispatch unless the
// host part forces a remote connection.
const (
	TransportNone  Transport = ""
	TransportUnix  Transport = "unix"
	TransportTCP   Transport = "tcp"
	TransportTLS   Transport = "tls"
	TransportSSH   Transport = "ssh"
	TransportLocal Transport = "local"
	// TransportMem reaches an in-process daemon through a named memnet
	// endpoint (the URI host is the endpoint name). Used by the scale
	// harness to run very large simulated fleets in one process.
	TransportMem Transport = "mem"
)

var validTransports = map[Transport]bool{
	TransportUnix:  true,
	TransportTCP:   true,
	TransportTLS:   true,
	TransportSSH:   true,
	TransportLocal: true,
	TransportMem:   true,
}

// URI is a parsed connection URI.
type URI struct {
	Driver    string
	Transport Transport
	Username  string
	Host      string
	Port      int // 0 when absent
	Path      string
	Params    map[string]string
}

// Parse parses a connection URI string.
func Parse(s string) (*URI, error) {
	if s == "" {
		return nil, fmt.Errorf("uri: empty connection URI")
	}
	u, err := url.Parse(s)
	if err != nil {
		return nil, fmt.Errorf("uri: %v", err)
	}
	if u.Scheme == "" {
		return nil, fmt.Errorf("uri: %q has no scheme", s)
	}
	out := &URI{Path: u.Path, Params: map[string]string{}}

	driver, transport, found := strings.Cut(u.Scheme, "+")
	out.Driver = driver
	if out.Driver == "" {
		return nil, fmt.Errorf("uri: %q has empty driver part", s)
	}
	if found {
		tr := Transport(transport)
		if !validTransports[tr] {
			return nil, fmt.Errorf("uri: %q: unknown transport %q", s, transport)
		}
		out.Transport = tr
	}

	if u.User != nil {
		out.Username = u.User.Username()
		if _, hasPwd := u.User.Password(); hasPwd {
			return nil, fmt.Errorf("uri: %q: passwords in URIs are not supported", s)
		}
	}
	out.Host = u.Hostname()
	if p := u.Port(); p != "" {
		port, err := strconv.Atoi(p)
		if err != nil || port <= 0 || port > 65535 {
			return nil, fmt.Errorf("uri: %q: invalid port %q", s, p)
		}
		out.Port = port
	}

	q, err := url.ParseQuery(u.RawQuery)
	if err != nil {
		return nil, fmt.Errorf("uri: %q: bad query: %v", s, err)
	}
	for k, vs := range q {
		if len(vs) > 1 {
			return nil, fmt.Errorf("uri: %q: repeated parameter %q", s, k)
		}
		out.Params[k] = vs[0]
	}

	// A remote transport without a host is only meaningful for unix/local.
	if out.Host == "" {
		switch out.Transport {
		case TransportTCP, TransportTLS, TransportSSH, TransportMem:
			return nil, fmt.Errorf("uri: %q: transport %q requires a host", s, out.Transport)
		}
	}
	return out, nil
}

// IsRemote reports whether the URI addresses a daemon rather than an
// in-process driver: either a remote transport or a non-empty host.
func (u *URI) IsRemote() bool {
	switch u.Transport {
	case TransportTCP, TransportTLS, TransportSSH, TransportMem:
		return true
	}
	if u.Transport == TransportUnix {
		return true
	}
	return u.Host != ""
}

// EffectiveTransport resolves the transport actually used: explicit
// transport wins; otherwise a host implies TLS (libvirt's default for bare
// remote URIs) and no host implies a local unix connection.
func (u *URI) EffectiveTransport() Transport {
	if u.Transport != TransportNone && u.Transport != TransportLocal {
		return u.Transport
	}
	if u.Host != "" {
		return TransportTLS
	}
	return TransportUnix
}

// Param returns a query parameter and whether it was present.
func (u *URI) Param(key string) (string, bool) {
	v, ok := u.Params[key]
	return v, ok
}

// String formats the URI back to its canonical textual form. Query
// parameters are emitted in sorted key order so formatting is stable.
func (u *URI) String() string {
	var b strings.Builder
	b.WriteString(u.Driver)
	if u.Transport != TransportNone {
		b.WriteByte('+')
		b.WriteString(string(u.Transport))
	}
	b.WriteString("://")
	if u.Username != "" {
		b.WriteString(url.User(u.Username).String())
		b.WriteByte('@')
	}
	b.WriteString(u.Host)
	if u.Port != 0 {
		fmt.Fprintf(&b, ":%d", u.Port)
	}
	b.WriteString(u.Path)
	if len(u.Params) > 0 {
		keys := make([]string, 0, len(u.Params))
		for k := range u.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteByte('?')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte('&')
			}
			b.WriteString(url.QueryEscape(k))
			b.WriteByte('=')
			b.WriteString(url.QueryEscape(u.Params[k]))
		}
	}
	return b.String()
}

// Aliases maps short names to full connection URIs, the equivalent of
// libvirt.conf uri_aliases.
type Aliases map[string]string

// Resolve expands s through the alias table (one level) and parses it.
func (a Aliases) Resolve(s string) (*URI, error) {
	if full, ok := a[s]; ok {
		return Parse(full)
	}
	return Parse(s)
}

// ParseAliases reads a client configuration document in the
// libvirt.conf style:
//
//	uri_aliases = [
//	  "prod=qsim+tcp://virt1.example.com/system",
//	  "lab=test:///default",
//	]
//
// Comments start with '#'. Alias names may not contain URI metacharacters
// so a name can never be confused with a real URI.
func ParseAliases(text string) (Aliases, error) {
	aliases := Aliases{}
	var inList bool
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !inList {
			key, rest, found := strings.Cut(line, "=")
			if !found || strings.TrimSpace(key) != "uri_aliases" {
				return nil, fmt.Errorf("uri: config line %d: expected uri_aliases = [", lineNo+1)
			}
			rest = strings.TrimSpace(rest)
			if rest != "[" {
				return nil, fmt.Errorf("uri: config line %d: expected '[' after uri_aliases =", lineNo+1)
			}
			inList = true
			continue
		}
		if line == "]" {
			inList = false
			continue
		}
		entry := strings.TrimSuffix(line, ",")
		entry = strings.Trim(entry, `"`)
		name, target, found := strings.Cut(entry, "=")
		if !found || name == "" || target == "" {
			return nil, fmt.Errorf("uri: config line %d: alias entries are \"name=uri\"", lineNo+1)
		}
		if strings.ContainsAny(name, ":/?@") {
			return nil, fmt.Errorf("uri: config line %d: alias name %q contains URI metacharacters", lineNo+1, name)
		}
		if _, err := Parse(target); err != nil {
			return nil, fmt.Errorf("uri: config line %d: %v", lineNo+1, err)
		}
		aliases[name] = target
	}
	if inList {
		return nil, fmt.Errorf("uri: unterminated uri_aliases list")
	}
	return aliases, nil
}
