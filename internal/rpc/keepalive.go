package rpc

import (
	"fmt"
	"time"
)

// KeepaliveConfig enables dead-peer detection on a client: when the
// connection has been idle for Interval, a ping is sent; after Count
// consecutive unanswered pings the connection is declared dead and
// closed, failing in-flight calls instead of hanging forever.
type KeepaliveConfig struct {
	Interval time.Duration
	Count    int
}

// Valid reports whether the configuration enables keepalive.
func (k KeepaliveConfig) Valid() bool { return k.Interval > 0 && k.Count > 0 }

// startKeepalive runs the probing loop; it exits when the client closes.
func (c *Client) startKeepalive(cfg KeepaliveConfig) {
	go func() {
		ticker := time.NewTicker(cfg.Interval)
		defer ticker.Stop()
		var missed int
		for range ticker.C {
			if c.closed.Load() {
				return
			}
			last := time.Unix(0, c.lastRx.Load())
			if time.Since(last) < cfg.Interval {
				missed = 0
				continue
			}
			missed++
			if missed > cfg.Count {
				kaFailures.Inc()
				c.failAll(fmt.Errorf("rpc: keepalive: peer silent for %d probes", cfg.Count))
				c.conn.Close()
				return
			}
			h := Header{
				Program: c.program,
				Version: ProtocolVersion,
				Type:    uint32(TypePing),
			}
			if err := c.conn.WriteMessage(h, nil); err != nil {
				kaFailures.Inc()
				c.failAll(fmt.Errorf("rpc: keepalive send: %w", err))
				c.conn.Close()
				return
			}
			kaPingsSent.Inc()
		}
	}()
}

// noteTraffic records that the peer is alive.
func (c *Client) noteTraffic() {
	c.lastRx.Store(time.Now().UnixNano())
}
