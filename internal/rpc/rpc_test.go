package rpc

import (
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

type inner struct {
	A uint32
	B string
}

type sample struct {
	Flag    bool
	I32     int32
	U32     uint32
	I64     int64
	U64     uint64
	N       int
	F       float64
	S       string
	Raw     []byte
	Strs    []string
	Nested  inner
	Inners  []inner
	private int // must be skipped
}

func TestXDRRoundTrip(t *testing.T) {
	in := sample{
		Flag: true, I32: -42, U32: 7, I64: -1 << 40, U64: 1 << 50,
		N: -9, F: 2.75, S: "hello world",
		Raw:    []byte{1, 2, 3},
		Strs:   []string{"a", "bb", "ccc"},
		Nested: inner{A: 1, B: "x"},
		Inners: []inner{{A: 2, B: "y"}, {A: 3, B: "z"}},
	}
	data, err := Marshal(&in)
	if err != nil {
		t.Fatal(err)
	}
	var out sample
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	in.private, out.private = 0, 0
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", in, out)
	}
}

func TestXDRAlignment(t *testing.T) {
	// Strings are padded to 4-byte boundaries.
	for _, s := range []string{"", "a", "ab", "abc", "abcd", "abcde"} {
		data, err := Marshal(struct{ S string }{s})
		if err != nil {
			t.Fatal(err)
		}
		if len(data)%4 != 0 {
			t.Fatalf("unaligned encoding for %q: %d bytes", s, len(data))
		}
		var out struct{ S string }
		if err := Unmarshal(data, &out); err != nil || out.S != s {
			t.Fatalf("%q: %v %q", s, err, out.S)
		}
	}
}

func TestXDRErrors(t *testing.T) {
	if _, err := Marshal(struct{ C chan int }{}); err == nil {
		t.Fatal("unsupported kind accepted")
	}
	var nilPtr *sample
	if _, err := Marshal(nilPtr); err == nil {
		t.Fatal("nil pointer accepted")
	}
	if err := Unmarshal(nil, nil); err == nil {
		t.Fatal("nil target accepted")
	}
	var s sample
	if err := Unmarshal([]byte{1, 2}, &s); err == nil {
		t.Fatal("truncated input accepted")
	}
	// Trailing bytes rejected.
	data, _ := Marshal(struct{ A uint32 }{5})
	var out struct{ A uint32 }
	if err := Unmarshal(append(data, 0), &out); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// Oversized array length rejected without allocation.
	huge := []byte{0xff, 0xff, 0xff, 0xff}
	var arr struct{ V []uint32 }
	if err := Unmarshal(huge, &arr); err == nil {
		t.Fatal("oversized array accepted")
	}
	// Bad bool value.
	bad, _ := Marshal(struct{ A uint32 }{7})
	var b struct{ B bool }
	if err := Unmarshal(bad, &b); err == nil {
		t.Fatal("bool=7 accepted")
	}
}

func TestXDRQuickRoundTrip(t *testing.T) {
	f := func(flag bool, i32 int32, u64 uint64, f64 float64, s string, raw []byte) bool {
		if len(s) > MaxStringLen || len(raw) > MaxStringLen {
			return true
		}
		in := struct {
			Flag bool
			I32  int32
			U64  uint64
			F    float64
			S    string
			Raw  []byte
		}{flag, i32, u64, f64, s, raw}
		data, err := Marshal(&in)
		if err != nil {
			return false
		}
		out := in
		out.Raw = nil
		if err := Unmarshal(data, &out); err != nil {
			return false
		}
		if len(in.Raw) == 0 && len(out.Raw) == 0 {
			out.Raw = in.Raw
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFramingRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	h := Header{Program: ProgramRemote, Version: 1, Procedure: 7, Type: uint32(TypeCall), Serial: 3}
	payload := []byte("payload-bytes")
	done := make(chan error, 1)
	go func() { done <- ca.WriteMessage(h, payload) }()
	gh, gp, err := cb.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if gh != h || string(gp) != string(payload) {
		t.Fatalf("got %+v %q", gh, gp)
	}
}

func TestFramingRejectsOversize(t *testing.T) {
	a, _ := net.Pipe()
	ca := NewConn(a)
	big := make([]byte, MaxMessageLen)
	if err := ca.WriteMessage(Header{}, big); err == nil {
		t.Fatal("oversized write accepted")
	}
}

// echoServer implements a minimal server: proc 1 echoes the payload,
// proc 2 returns an error, proc 3 emits an event then replies.
func echoServer(t *testing.T, nc net.Conn) {
	t.Helper()
	conn := NewConn(nc)
	go func() {
		for {
			h, payload, err := conn.ReadMessage()
			if err != nil {
				return
			}
			switch h.Procedure {
			case 1:
				h.Type = uint32(TypeReply)
				h.Status = uint32(StatusOK)
				conn.WriteMessage(h, payload) //nolint:errcheck
			case 2:
				h.Type = uint32(TypeReply)
				h.Status = uint32(StatusError)
				ep, _ := Marshal(&ErrorPayload{Code: 42, Message: "nope"})
				conn.WriteMessage(h, ep) //nolint:errcheck
			case 3:
				ev := Header{Program: h.Program, Version: 1, Procedure: 99, Type: uint32(TypeEvent)}
				conn.WriteMessage(ev, []byte{}) //nolint:errcheck
				h.Type = uint32(TypeReply)
				conn.WriteMessage(h, []byte{}) //nolint:errcheck
			}
		}
	}()
}

func TestClientCall(t *testing.T) {
	a, b := net.Pipe()
	echoServer(t, b)
	cl := NewClient(a, ProgramRemote, nil)
	defer cl.Close()

	type msg struct{ S string }
	var out msg
	if err := cl.Call(1, &msg{S: "ping"}, &out); err != nil {
		t.Fatal(err)
	}
	if out.S != "ping" {
		t.Fatalf("echo %q", out.S)
	}
	err := cl.Call(2, &msg{S: "x"}, nil)
	re, ok := err.(*RemoteError)
	if !ok || re.Code != 42 || re.Message != "nope" {
		t.Fatalf("error call: %v", err)
	}
}

func TestClientConcurrentCalls(t *testing.T) {
	a, b := net.Pipe()
	echoServer(t, b)
	cl := NewClient(a, ProgramRemote, nil)
	defer cl.Close()
	type msg struct{ S string }
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				in := msg{S: strings.Repeat("x", id+1)}
				var out msg
				if err := cl.Call(1, &in, &out); err != nil {
					t.Errorf("call: %v", err)
					return
				}
				if out.S != in.S {
					t.Errorf("mismatched echo")
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestClientEvents(t *testing.T) {
	a, b := net.Pipe()
	echoServer(t, b)
	got := make(chan uint32, 1)
	cl := NewClient(a, ProgramRemote, func(proc uint32, _ []byte) { got <- proc })
	defer cl.Close()
	if err := cl.Call(3, nil, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case proc := <-got:
		if proc != 99 {
			t.Fatalf("event proc %d", proc)
		}
	case <-time.After(time.Second):
		t.Fatal("no event delivered")
	}
}

func TestClientConnectionLoss(t *testing.T) {
	a, b := net.Pipe()
	cl := NewClient(a, ProgramRemote, nil)
	done := make(chan error, 1)
	go func() { done <- cl.Call(1, nil, nil) }()
	// Give the call a moment to register, then sever.
	time.Sleep(10 * time.Millisecond)
	b.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("call survived connection loss")
		}
	case <-time.After(time.Second):
		t.Fatal("call hung after connection loss")
	}
	// Subsequent calls fail fast.
	if err := cl.Call(1, nil, nil); err == nil {
		t.Fatal("call on dead client accepted")
	}
}

func TestClientCloseRejectsCalls(t *testing.T) {
	a, b := net.Pipe()
	echoServer(t, b)
	cl := NewClient(a, ProgramRemote, nil)
	cl.Close()
	if err := cl.Call(1, nil, nil); err == nil {
		t.Fatal("call after close accepted")
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
