package rpc

import "testing"

// FuzzUnmarshalStats feeds arbitrary bytes into the XDR decoder against
// a representative reply structure: decoding must never panic or
// over-allocate, only return errors.
func FuzzUnmarshalStats(f *testing.F) {
	type statsLike struct {
		State  uint32
		CPU    uint64
		Names  []string
		Raw    []byte
		Flag   bool
		Amount float64
	}
	seed, err := Marshal(&statsLike{State: 3, CPU: 42, Names: []string{"a", "b"}, Raw: []byte{1}, Flag: true, Amount: 2.5})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		var out statsLike
		_ = Unmarshal(data, &out) // must not panic
		if len(out.Raw) > MaxStringLen || len(out.Names) > MaxArrayLen {
			t.Fatalf("decoder exceeded limits: raw=%d names=%d", len(out.Raw), len(out.Names))
		}
	})
}

// FuzzRoundTrip checks that whatever the decoder accepts re-encodes to
// an equivalent value (decode∘encode∘decode is stable).
func FuzzRoundTrip(f *testing.F) {
	type msg struct {
		A uint32
		S string
		B []byte
	}
	seed, _ := Marshal(&msg{A: 7, S: "x", B: []byte{9}})
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		var first msg
		if err := Unmarshal(data, &first); err != nil {
			return
		}
		re, err := Marshal(&first)
		if err != nil {
			t.Fatalf("re-encode of accepted value failed: %v", err)
		}
		var second msg
		if err := Unmarshal(re, &second); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if first.A != second.A || first.S != second.S || string(first.B) != string(second.B) {
			t.Fatalf("unstable round trip: %+v vs %+v", first, second)
		}
	})
}
