package rpc

import (
	"bytes"
	"encoding/binary"
	"net"
	"testing"
	"time"
)

// FuzzUnmarshalStats feeds arbitrary bytes into the XDR decoder against
// a representative reply structure: decoding must never panic or
// over-allocate, only return errors.
func FuzzUnmarshalStats(f *testing.F) {
	type statsLike struct {
		State  uint32
		CPU    uint64
		Names  []string
		Raw    []byte
		Flag   bool
		Amount float64
	}
	seed, err := Marshal(&statsLike{State: 3, CPU: 42, Names: []string{"a", "b"}, Raw: []byte{1}, Flag: true, Amount: 2.5})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		var out statsLike
		_ = Unmarshal(data, &out) // must not panic
		if len(out.Raw) > MaxStringLen || len(out.Names) > MaxArrayLen {
			t.Fatalf("decoder exceeded limits: raw=%d names=%d", len(out.Raw), len(out.Names))
		}
	})
}

// FuzzRoundTrip checks that whatever the decoder accepts re-encodes to
// an equivalent value (decode∘encode∘decode is stable).
func FuzzRoundTrip(f *testing.F) {
	type msg struct {
		A uint32
		S string
		B []byte
	}
	seed, _ := Marshal(&msg{A: 7, S: "x", B: []byte{9}})
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		var first msg
		if err := Unmarshal(data, &first); err != nil {
			return
		}
		re, err := Marshal(&first)
		if err != nil {
			t.Fatalf("re-encode of accepted value failed: %v", err)
		}
		var second msg
		if err := Unmarshal(re, &second); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if first.A != second.A || first.S != second.S || string(first.B) != string(second.B) {
			t.Fatalf("unstable round trip: %+v vs %+v", first, second)
		}
	})
}

// memConn is a net.Conn over an in-memory byte stream: reads come from a
// fixed buffer (then EOF), writes are discarded. Just enough transport
// for frame-decoder fuzzing without sockets.
type memConn struct {
	r *bytes.Reader
}

func (c *memConn) Read(p []byte) (int, error)       { return c.r.Read(p) }
func (c *memConn) Write(p []byte) (int, error)      { return len(p), nil }
func (c *memConn) Close() error                     { return nil }
func (c *memConn) LocalAddr() net.Addr              { return &net.UnixAddr{Name: "mem", Net: "unix"} }
func (c *memConn) RemoteAddr() net.Addr             { return &net.UnixAddr{Name: "mem", Net: "unix"} }
func (c *memConn) SetDeadline(time.Time) error      { return nil }
func (c *memConn) SetReadDeadline(time.Time) error  { return nil }
func (c *memConn) SetWriteDeadline(time.Time) error { return nil }

// rawFrame hand-assembles one wire frame: 4-byte total length, 24-byte
// header, payload. Building it manually (instead of via WriteMessage)
// lets seeds declare lengths that lie.
func rawFrame(h Header, payload []byte, declared int) []byte {
	buf := make([]byte, 4+headerLen+len(payload))
	binary.BigEndian.PutUint32(buf[0:], uint32(declared))
	binary.BigEndian.PutUint32(buf[4:], h.Program)
	binary.BigEndian.PutUint32(buf[8:], h.Version)
	binary.BigEndian.PutUint32(buf[12:], h.Procedure)
	binary.BigEndian.PutUint32(buf[16:], h.Type)
	binary.BigEndian.PutUint32(buf[20:], h.Serial)
	binary.BigEndian.PutUint32(buf[24:], h.Status)
	copy(buf[4+headerLen:], payload)
	return buf
}

// FuzzReadMessage feeds arbitrary byte streams into the frame decoder:
// truncated frames, oversized or lying length prefixes, garbage headers,
// and multi-frame runs. The decoder must only ever return clean errors —
// no panics, no allocation beyond MaxMessageLen, no infinite loop.
func FuzzReadMessage(f *testing.F) {
	okHdr := Header{Program: ProgramRemote, Version: ProtocolVersion, Procedure: 3, Type: uint32(TypeCall), Serial: 7}
	valid := rawFrame(okHdr, []byte("payload"), 4+headerLen+7)
	f.Add(valid)
	f.Add(append(valid, valid...))                         // two back-to-back frames
	f.Add(valid[:9])                                       // truncated mid-header
	f.Add(rawFrame(okHdr, nil, MaxMessageLen+1))           // oversized declared length
	f.Add(rawFrame(okHdr, nil, 3))                         // under-length (< frame floor)
	f.Add(rawFrame(okHdr, []byte("xx"), 4+headerLen+2000)) // length lies long: truncated body
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xde, 0xad})      // hostile length word
	f.Add(bytes.Repeat([]byte{0x00}, 64))                  // zero spray
	f.Fuzz(func(t *testing.T, data []byte) {
		conn := NewConn(&memConn{r: bytes.NewReader(data)})
		// Drain the stream: each iteration consumes at least the length
		// word, so the loop is bounded by len(data).
		for {
			h, payload, err := conn.ReadMessage()
			if err != nil {
				return
			}
			if len(payload) > MaxMessageLen {
				t.Fatalf("decoder returned %d-byte payload past MaxMessageLen", len(payload))
			}
			_ = h
		}
	})
}
