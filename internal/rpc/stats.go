package rpc

import (
	"fmt"
	"sync"

	"repro/internal/telemetry"
)

// Wire-level counters. Every framed message in the process is counted
// here regardless of which connection carried it; the cost is two atomic
// adds per message. They live in the Default registry so the daemon's
// metrics surface and the Prometheus endpoint see the whole substrate.
var (
	txFrames = telemetry.Default.Counter("rpc_tx_frames_total")
	rxFrames = telemetry.Default.Counter("rpc_rx_frames_total")
	txBytes  = telemetry.Default.Counter("rpc_tx_bytes_total")
	rxBytes  = telemetry.Default.Counter("rpc_rx_bytes_total")

	kaPingsSent = telemetry.Default.Counter("rpc_keepalive_pings_total")
	kaPongsRcvd = telemetry.Default.Counter("rpc_keepalive_pongs_total")
	kaFailures  = telemetry.Default.Counter("rpc_keepalive_failures_total")

	// Robustness counters: calls abandoned at their deadline and frames
	// perturbed by the armed faultpoint registry. Fault counters stay at
	// zero in production (the registry is disarmed); under chaos tests
	// they let assertions confirm faults actually flowed.
	callsDeadlined  = telemetry.Default.Counter("rpc_calls_deadline_total")
	faultsDropped   = telemetry.Default.Counter("rpc_faults_dropped_total")
	faultsCorrupted = telemetry.Default.Counter("rpc_faults_corrupted_total")

	// Fast-path counters: pong replies the client failed to send (a run
	// of them tears the connection down, see maxPongWriteFailures) and
	// flushes performed by the optional write-coalescing goroutine.
	pongWriteFails   = telemetry.Default.Counter("rpc_pong_write_failures_total")
	coalescedFlushes = telemetry.Default.Counter("rpc_coalesced_flushes_total")
)

// procNames maps program → procedure → symbolic name. Programs register
// their tables at init so the daemon, tracer and admin surface can label
// metrics with names instead of raw numbers.
var (
	procNamesMu  sync.RWMutex
	procNames    = make(map[uint32]map[uint32]string)
	programNames = map[uint32]string{
		ProgramRemote: "remote",
		ProgramAdmin:  "admin",
	}
)

// RegisterProcNames installs the symbolic procedure names of a program.
// Later registrations merge over earlier ones.
func RegisterProcNames(program uint32, names map[uint32]string) {
	procNamesMu.Lock()
	defer procNamesMu.Unlock()
	tbl, ok := procNames[program]
	if !ok {
		tbl = make(map[uint32]string, len(names))
		procNames[program] = tbl
	}
	for proc, name := range names {
		tbl[proc] = name
	}
}

// ProgramName returns the symbolic name of a program number.
func ProgramName(program uint32) string {
	if s, ok := programNames[program]; ok {
		return s
	}
	return fmt.Sprintf("program-0x%x", program)
}

// ProcName returns the symbolic name of a procedure, falling back to the
// numeric form for unregistered procedures.
func ProcName(program, proc uint32) string {
	procNamesMu.RLock()
	name, ok := procNames[program][proc]
	procNamesMu.RUnlock()
	if ok {
		return name
	}
	return fmt.Sprintf("proc-%d", proc)
}
