package rpc

import (
	"bytes"
	"fmt"
	"math"
	"net"
	"reflect"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
	"unsafe"
)

// fixedInfo mirrors the shape of a typical monitoring reply: fixed-width
// fields only, the steady-state hot path of the protocol.
type fixedInfo struct {
	State     uint32
	MaxMemKiB uint64
	MemKiB    uint64
	VCPUs     uint32
	CPUTimeNs uint64
}

// TestPlanMatchesReflect is the differential gate for the compiled
// codec: every encoding must be byte-identical to the reflective
// reference implementation, and both decoders must agree.
func TestPlanMatchesReflect(t *testing.T) {
	cases := []interface{}{
		&fixedInfo{State: 1, MaxMemKiB: 1 << 40, MemKiB: 12345, VCPUs: 8, CPUTimeNs: math.MaxUint64},
		&sample{
			Flag: true, I32: -42, U32: 7, I64: -1 << 40, U64: 1 << 50,
			N: -9, F: 2.75, S: "hello world",
			Raw:    []byte{1, 2, 3},
			Strs:   []string{"a", "bb", "ccc"},
			Nested: inner{A: 1, B: "x"},
			Inners: []inner{{A: 2, B: "y"}, {A: 3, B: "z"}},
		},
		&sample{}, // zero values: empty strings, nil slices
		&struct{ S string }{"abc"},
		&struct{ V []uint64 }{[]uint64{1, 2, 3}},
		&struct{ B []byte }{},
	}
	for i, v := range cases {
		fast, err := Marshal(v)
		if err != nil {
			t.Fatalf("case %d: Marshal: %v", i, err)
		}
		ref, err := MarshalReflect(v)
		if err != nil {
			t.Fatalf("case %d: MarshalReflect: %v", i, err)
		}
		if !bytes.Equal(fast, ref) {
			t.Fatalf("case %d: encodings differ:\nfast %x\nref  %x", i, fast, ref)
		}
		out1 := reflect.New(reflect.TypeOf(v).Elem()).Interface()
		out2 := reflect.New(reflect.TypeOf(v).Elem()).Interface()
		if err := Unmarshal(fast, out1); err != nil {
			t.Fatalf("case %d: Unmarshal: %v", i, err)
		}
		if err := UnmarshalReflect(fast, out2); err != nil {
			t.Fatalf("case %d: UnmarshalReflect: %v", i, err)
		}
		if !reflect.DeepEqual(out1, out2) {
			t.Fatalf("case %d: decoders disagree:\n%+v\n%+v", i, out1, out2)
		}
	}
}

// TestPlanQuickEquality fuzzes random values through both encoders and
// decoders; any divergence is a bug in the compiled plan.
func TestPlanQuickEquality(t *testing.T) {
	f := func(flag bool, i32 int32, u64 uint64, f64 float64, s string, raw []byte, strs []string) bool {
		if len(s) > MaxStringLen || len(raw) > MaxStringLen || len(strs) > MaxArrayLen {
			return true
		}
		for _, e := range strs {
			if len(e) > MaxStringLen {
				return true
			}
		}
		in := struct {
			Flag bool
			I32  int32
			U64  uint64
			F    float64
			S    string
			Raw  []byte
			Strs []string
		}{flag, i32, u64, f64, s, raw, strs}
		fast, err := Marshal(&in)
		if err != nil {
			return false
		}
		ref, err := MarshalReflect(&in)
		if err != nil || !bytes.Equal(fast, ref) {
			return false
		}
		out1, out2 := in, in
		out1.Raw, out1.Strs = nil, nil
		out2.Raw, out2.Strs = nil, nil
		if err := Unmarshal(fast, &out1); err != nil {
			return false
		}
		if err := UnmarshalReflect(fast, &out2); err != nil {
			return false
		}
		return reflect.DeepEqual(out1, out2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestMarshalAllocs is the allocation regression gate: marshalling a
// fixed-width wire struct must cost at most the output buffer (1 alloc),
// and appending into a pre-sized buffer must cost nothing.
func TestMarshalAllocs(t *testing.T) {
	v := &fixedInfo{State: 1, MaxMemKiB: 1 << 21, MemKiB: 1 << 20, VCPUs: 4, CPUTimeNs: 5e9}
	if _, err := Marshal(v); err != nil { // warm the plan cache
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := Marshal(v); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("Marshal of fixed struct: %.1f allocs/op, want <= 1", allocs)
	}

	buf := make([]byte, 0, 256)
	allocs = testing.AllocsPerRun(200, func() {
		out, err := AppendMarshal(buf[:0], v)
		if err != nil {
			t.Fatal(err)
		}
		_ = out
	})
	if allocs != 0 {
		t.Fatalf("AppendMarshal into sized buffer: %.1f allocs/op, want 0", allocs)
	}
}

// TestDecodeReuse pins the steady-state decode contract: unmarshalling
// over a retained value reuses slice capacity (same backing array) and
// keeps strings whose bytes did not change, while still producing
// exactly the encoded value — including shrinking and growing rows.
func TestDecodeReuse(t *testing.T) {
	type row struct {
		Name string
		N    uint64
	}
	type payload struct{ Rows []row }
	enc := func(p *payload) []byte {
		t.Helper()
		data, err := Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	first := payload{Rows: []row{{"alpha", 1}, {"beta", 2}, {"gamma", 3}}}
	var dst payload
	if err := Unmarshal(enc(&first), &dst); err != nil {
		t.Fatal(err)
	}
	base := &dst.Rows[0]
	name0 := dst.Rows[0].Name

	// Same names, new numbers: backing array and strings must survive.
	second := payload{Rows: []row{{"alpha", 10}, {"beta", 20}, {"gamma", 30}}}
	allocs := testing.AllocsPerRun(100, func() {
		if err := Unmarshal(enc(&second), &dst); err != nil {
			t.Fatal(err)
		}
	})
	if !reflect.DeepEqual(dst, second) {
		t.Fatalf("reused decode diverged: %+v", dst)
	}
	if &dst.Rows[0] != base {
		t.Fatal("decode with sufficient capacity reallocated the slice")
	}
	if unsafeStringData(dst.Rows[0].Name) != unsafeStringData(name0) {
		t.Fatal("unchanged name was reallocated")
	}
	// Marshal of the source is ~1 alloc; the reused decode itself must
	// add nothing beyond it.
	if allocs > 1 {
		t.Fatalf("steady-state reuse decode: %.1f allocs/op, want <= 1", allocs)
	}

	// Shrink: fewer rows must adjust len and keep values exact.
	third := payload{Rows: []row{{"delta", 9}}}
	if err := Unmarshal(enc(&third), &dst); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dst, third) {
		t.Fatalf("shrinking decode diverged: %+v", dst)
	}
	// Grow beyond capacity: a fresh array, values exact.
	fourth := payload{Rows: []row{{"a", 1}, {"b", 2}, {"c", 3}, {"d", 4}, {"e", 5}}}
	if err := Unmarshal(enc(&fourth), &dst); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dst, fourth) {
		t.Fatalf("growing decode diverged: %+v", dst)
	}
}

func unsafeStringData(s string) *byte { return unsafe.StringData(s) }

// TestSerialWraparound seeds the serial counter just below overflow and
// drives calls across the wrap: serial 0 must never be assigned, and a
// serial still pending from before the wrap must be skipped, not stolen.
func TestSerialWraparound(t *testing.T) {
	a, b := net.Pipe()
	echoServer(t, b)
	cl := NewClient(a, ProgramRemote, nil)
	defer cl.Close()

	cl.serial.Store(math.MaxUint32 - 2)

	// Park a fake pending call on serial 1 — the first serial after the
	// wrap — so register must skip it.
	blocked := make(chan reply, 1)
	sh := cl.shard(1)
	sh.mu.Lock()
	sh.m[1] = blocked
	sh.mu.Unlock()

	type msg struct{ S string }
	for i := 0; i < 8; i++ {
		var out msg
		in := msg{S: fmt.Sprintf("wrap-%d", i)}
		if err := cl.Call(1, &in, &out); err != nil {
			t.Fatalf("call %d across wraparound: %v", i, err)
		}
		if out.S != in.S {
			t.Fatalf("call %d: echo %q != %q", i, out.S, in.S)
		}
	}

	// The parked entry survived untouched and serial 0 was never used.
	sh.mu.Lock()
	ch, still := sh.m[1]
	sh.mu.Unlock()
	if !still || ch != blocked {
		t.Fatal("pending serial 1 was reassigned across wraparound")
	}
	sh0 := cl.shard(0)
	sh0.mu.Lock()
	_, zero := sh0.m[0]
	sh0.mu.Unlock()
	if zero {
		t.Fatal("serial 0 was assigned")
	}
	select {
	case <-blocked:
		t.Fatal("parked call received a stolen reply")
	default:
	}
}

// pongFailConn fails every write once tripped, simulating a connection
// whose write side died while the read side still delivers.
type pongFailConn struct {
	net.Conn
	fail atomic.Bool
}

func (c *pongFailConn) Write(p []byte) (int, error) {
	if c.fail.Load() {
		return 0, fmt.Errorf("injected write failure")
	}
	return c.Conn.Write(p)
}

// TestPongWriteFailureTearsDown drives server pings at a client whose
// writes fail: after maxPongWriteFailures consecutive failed pongs the
// client must close itself instead of looping silently.
func TestPongWriteFailureTearsDown(t *testing.T) {
	a, b := net.Pipe()
	fc := &pongFailConn{Conn: a}
	cl := NewClient(fc, ProgramRemote, nil)
	defer cl.Close()

	before := pongWriteFails.Value()
	fc.fail.Store(true)

	srv := NewConn(b)
	ping := Header{Program: ProgramRemote, Version: ProtocolVersion, Type: uint32(TypePing)}
	for i := 0; i < maxPongWriteFailures; i++ {
		if err := srv.WriteMessage(ping, nil); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
	}

	deadline := time.After(2 * time.Second)
	for !cl.closed.Load() {
		select {
		case <-deadline:
			t.Fatal("client did not tear down after persistent pong failures")
		case <-time.After(5 * time.Millisecond):
		}
	}
	if got := pongWriteFails.Value() - before; got < maxPongWriteFailures {
		t.Fatalf("pong write failures counted %d, want >= %d", got, maxPongWriteFailures)
	}
	if err := cl.Call(1, nil, nil); err == nil {
		t.Fatal("call on torn-down client accepted")
	}
}

// TestWriteCoalescing exercises the flush-on-idle writer end to end:
// calls must still round-trip when outgoing frames pass through the
// buffered writer.
func TestWriteCoalescing(t *testing.T) {
	a, b := net.Pipe()
	echoServer(t, b)
	cl := NewClient(a, ProgramRemote, nil)
	defer cl.Close()
	cl.EnableWriteCoalescing(16 * 1024)

	type msg struct{ S string }
	for i := 0; i < 20; i++ {
		in := msg{S: fmt.Sprintf("coalesced-%d", i)}
		var out msg
		if err := cl.Call(1, &in, &out); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if out.S != in.S {
			t.Fatalf("call %d: echo mismatch", i)
		}
	}
}
