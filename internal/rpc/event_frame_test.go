package rpc

import (
	"bytes"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// TestWatchEventFrameOversized feeds TypeEvent frames with hostile
// length prefixes into the frame decoder: declared lengths past
// MaxMessageLen and truncated bodies must come back as clean errors —
// no panic, no oversized allocation surviving to the caller.
func TestWatchEventFrameOversized(t *testing.T) {
	evHdr := Header{Program: ProgramRemote, Version: ProtocolVersion,
		Procedure: 1001, Type: uint32(TypeEvent)}
	cases := map[string][]byte{
		"declared past max":    rawFrame(evHdr, nil, MaxMessageLen+1),
		"declared huge":        rawFrame(evHdr, nil, 1<<30),
		"under frame floor":    rawFrame(evHdr, nil, 3),
		"length lies long":     rawFrame(evHdr, []byte("ev"), 4+headerLen+4096),
		"truncated mid-header": rawFrame(evHdr, nil, 4+headerLen)[:11],
	}
	for name, data := range cases {
		conn := NewConn(&memConn{r: bytes.NewReader(data)})
		h, payload, err := conn.ReadMessage()
		if err == nil {
			t.Errorf("%s: decoder accepted the frame: %+v %d bytes", name, h, len(payload))
		}
	}
}

// TestWatchEventFramePassthrough checks the transport contract for
// well-formed event frames: the payload reaches the caller verbatim —
// even when it is garbage — because payload validation belongs to the
// consumer (whose decoder ignores what it cannot parse and lets the
// sequence gap trigger a resync).
func TestWatchEventFramePassthrough(t *testing.T) {
	evHdr := Header{Program: ProgramRemote, Version: ProtocolVersion,
		Procedure: 1001, Type: uint32(TypeEvent)}
	garbage := []byte{0xde, 0xad, 0xbe, 0xef, 0x01}
	data := rawFrame(evHdr, garbage, 4+headerLen+len(garbage))
	conn := NewConn(&memConn{r: bytes.NewReader(data)})
	h, payload, err := conn.ReadMessage()
	if err != nil {
		t.Fatalf("valid event frame rejected: %v", err)
	}
	if MsgType(h.Type) != TypeEvent || h.Procedure != 1001 {
		t.Fatalf("header mangled: %+v", h)
	}
	if !bytes.Equal(payload, garbage) {
		t.Fatalf("payload mangled: %x", payload)
	}
}

// TestClientSurvivesGarbageEventFrames drives a live rpc.Client with a
// stream of malformed TypeEvent frames followed by a valid one: the
// reader loop must deliver every payload to the event handler without
// panicking, stay alive throughout, and then fail cleanly (not hang)
// when the peer sends an oversized frame and disconnects.
func TestClientSurvivesGarbageEventFrames(t *testing.T) {
	cli, srv := net.Pipe()
	var delivered atomic.Int32
	c := NewClient(cli, ProgramRemote, func(proc uint32, payload []byte) {
		// Mimic the remote driver: try to decode, ignore failures.
		var ev struct {
			SubscriptionID int32
			Seq            uint64
		}
		_ = Unmarshal(payload, &ev)
		delivered.Add(1)
	})
	defer c.Close()

	sconn := NewConn(srv)
	evHdr := Header{Program: ProgramRemote, Version: ProtocolVersion,
		Procedure: 1001, Type: uint32(TypeEvent)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Garbage payloads of assorted shapes, then one valid-looking one.
		for _, payload := range [][]byte{
			{0xff, 0xff, 0xff, 0xff},
			bytes.Repeat([]byte{0xa5}, 333),
			{},
			{0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x2a},
		} {
			if err := sconn.WriteMessage(evHdr, payload); err != nil {
				t.Errorf("server write: %v", err)
				return
			}
		}
		// Oversized frame: the length prefix alone is enough for the
		// client to refuse it and tear down. (Only the prefix is sent —
		// net.Pipe writes block until read, and the client stops reading
		// at the hostile length word.)
		raw := rawFrame(evHdr, nil, MaxMessageLen+1)
		if _, err := srv.Write(raw[:4]); err != nil {
			t.Errorf("server write oversized: %v", err)
		}
		srv.Close()
	}()
	<-done

	deadline := time.Now().Add(2 * time.Second)
	for delivered.Load() < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := delivered.Load(); got < 4 {
		t.Fatalf("only %d/4 event payloads delivered", got)
	}
	// The oversized frame kills the transport; the client must notice.
	for c.Alive() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if c.Alive() {
		t.Fatal("client still reports alive after an oversized frame tore the transport down")
	}
}
