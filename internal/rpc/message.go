package rpc

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/faultpoint"
)

// Program numbers identify the protocol spoken on a connection.
const (
	ProgramRemote uint32 = 0x20008086 // hypervisor management
	ProgramAdmin  uint32 = 0x06900690 // daemon administration
)

// ProtocolVersion is the single supported protocol version.
const ProtocolVersion uint32 = 1

// MsgType classifies a message.
type MsgType uint32

// Message types.
const (
	TypeCall  MsgType = 0 // client request
	TypeReply MsgType = 1 // server response
	TypeEvent MsgType = 2 // unsolicited server notification
	TypePing  MsgType = 3 // keepalive probe
	TypePong  MsgType = 4 // keepalive response
)

// Status qualifies a reply.
type Status uint32

// Reply statuses.
const (
	StatusOK    Status = 0
	StatusError Status = 1
)

// Header precedes every message payload on the wire.
type Header struct {
	Program   uint32
	Version   uint32
	Procedure uint32
	Type      uint32
	Serial    uint32
	Status    uint32
}

const headerLen = 6 * 4

// MaxMessageLen bounds a whole framed message (length word included).
const MaxMessageLen = 16 * 1024 * 1024

// ErrorPayload carries a failure across the wire.
type ErrorPayload struct {
	Code    uint32
	Message string
}

// Conn frames messages over a stream transport. Reads and writes are
// independently serialised, so one goroutine may read while others
// write.
type Conn struct {
	rmu sync.Mutex
	wmu sync.Mutex
	c   net.Conn
}

// NewConn wraps a stream connection.
func NewConn(c net.Conn) *Conn { return &Conn{c: c} }

// Close closes the underlying transport.
func (c *Conn) Close() error { return c.c.Close() }

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.c.RemoteAddr() }

// LocalAddr returns the local address.
func (c *Conn) LocalAddr() net.Addr { return c.c.LocalAddr() }

// WriteMessage frames and sends one message. The "rpc.send" faultpoint
// can drop the frame (reported as sent — the bytes just never leave, as
// on a lossy network), corrupt its payload, or fail the write outright.
func (c *Conn) WriteMessage(h Header, payload []byte) error {
	if spec, ok := faultpoint.Default.Eval("rpc.send"); ok {
		switch spec.Mode {
		case faultpoint.ModeDrop:
			faultsDropped.Inc()
			return nil
		case faultpoint.ModeCorrupt:
			payload = corruptCopy(payload)
			faultsCorrupted.Inc()
		case faultpoint.ModeError:
			if spec.Err != nil {
				return spec.Err
			}
			return fmt.Errorf("rpc: injected send fault")
		}
	}
	total := 4 + headerLen + len(payload)
	if total > MaxMessageLen {
		return fmt.Errorf("rpc: message of %d exceeds limit", total)
	}
	buf := make([]byte, total)
	binary.BigEndian.PutUint32(buf[0:], uint32(total))
	binary.BigEndian.PutUint32(buf[4:], h.Program)
	binary.BigEndian.PutUint32(buf[8:], h.Version)
	binary.BigEndian.PutUint32(buf[12:], h.Procedure)
	binary.BigEndian.PutUint32(buf[16:], h.Type)
	binary.BigEndian.PutUint32(buf[20:], h.Serial)
	binary.BigEndian.PutUint32(buf[24:], h.Status)
	copy(buf[28:], payload)
	c.wmu.Lock()
	defer c.wmu.Unlock()
	n, err := c.c.Write(buf)
	if n > 0 {
		txBytes.Add(uint64(n))
	}
	if err == nil {
		txFrames.Inc()
	}
	return err
}

// ReadMessage receives one framed message. The "rpc.recv" faultpoint can
// drop a received frame (the read loops on to the next one, as if the
// frame were lost in flight), corrupt its payload, or fail the read.
func (c *Conn) ReadMessage() (Header, []byte, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(c.c, lenBuf[:]); err != nil {
			return Header{}, nil, err
		}
		total := binary.BigEndian.Uint32(lenBuf[:])
		if total < 4+headerLen || total > MaxMessageLen {
			return Header{}, nil, fmt.Errorf("rpc: invalid message length %d", total)
		}
		rest := make([]byte, total-4)
		if _, err := io.ReadFull(c.c, rest); err != nil {
			return Header{}, nil, err
		}
		h := Header{
			Program:   binary.BigEndian.Uint32(rest[0:]),
			Version:   binary.BigEndian.Uint32(rest[4:]),
			Procedure: binary.BigEndian.Uint32(rest[8:]),
			Type:      binary.BigEndian.Uint32(rest[12:]),
			Serial:    binary.BigEndian.Uint32(rest[16:]),
			Status:    binary.BigEndian.Uint32(rest[20:]),
		}
		rxFrames.Inc()
		rxBytes.Add(uint64(total))
		payload := rest[headerLen:]
		if spec, ok := faultpoint.Default.Eval("rpc.recv"); ok {
			switch spec.Mode {
			case faultpoint.ModeDrop:
				faultsDropped.Inc()
				continue
			case faultpoint.ModeCorrupt:
				payload = corruptCopy(payload)
				faultsCorrupted.Inc()
			case faultpoint.ModeError:
				if spec.Err != nil {
					return Header{}, nil, spec.Err
				}
				return Header{}, nil, fmt.Errorf("rpc: injected recv fault")
			}
		}
		return h, payload, nil
	}
}

// corruptCopy returns a bit-flipped copy of a payload; the original is
// left alone so callers retrying with the same buffer are unaffected.
func corruptCopy(payload []byte) []byte {
	if len(payload) == 0 {
		return payload
	}
	out := make([]byte, len(payload))
	copy(out, payload)
	out[0] ^= 0xff
	out[len(out)/2] ^= 0xa5
	out[len(out)-1] ^= 0xff
	return out
}
