package rpc

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/faultpoint"
)

// Program numbers identify the protocol spoken on a connection.
const (
	ProgramRemote uint32 = 0x20008086 // hypervisor management
	ProgramAdmin  uint32 = 0x06900690 // daemon administration
)

// ProtocolVersion is the single supported protocol version.
const ProtocolVersion uint32 = 1

// MsgType classifies a message.
type MsgType uint32

// Message types.
const (
	TypeCall  MsgType = 0 // client request
	TypeReply MsgType = 1 // server response
	TypeEvent MsgType = 2 // unsolicited server notification
	TypePing  MsgType = 3 // keepalive probe
	TypePong  MsgType = 4 // keepalive response
)

// Status qualifies a reply.
type Status uint32

// Reply statuses.
const (
	StatusOK    Status = 0
	StatusError Status = 1
)

// Header precedes every message payload on the wire.
type Header struct {
	Program   uint32
	Version   uint32
	Procedure uint32
	Type      uint32
	Serial    uint32
	Status    uint32
}

const headerLen = 6 * 4

// frameOverhead is the length word plus header preceding every payload.
const frameOverhead = 4 + headerLen

// MaxMessageLen bounds a whole framed message (length word included).
const MaxMessageLen = 16 * 1024 * 1024

// maxPooledFrame caps the buffer capacity retained in the frame pool;
// occasional jumbo frames (domain XML documents) are let go to the GC
// rather than pinning megabytes per idle connection.
const maxPooledFrame = 64 * 1024

// ErrorPayload carries a failure across the wire. RetryAfterMs is the
// server's backoff hint on overload rejections (0 = none); it travels
// with every error frame so admission control can pace clients without
// a side channel.
type ErrorPayload struct {
	Code         uint32
	Message      string
	RetryAfterMs uint32
}

// PeekString returns the first XDR string or opaque field of an
// encoded payload without decoding or copying — a view into the
// payload bytes. Admission ACL checks use it to read the object name
// or UUID leading nearly every management call before committing to a
// full decode. Reports false when the payload doesn't start with a
// well-formed length-prefixed field.
func PeekString(payload []byte) ([]byte, bool) {
	if len(payload) < 4 {
		return nil, false
	}
	n := binary.BigEndian.Uint32(payload)
	if uint64(n) > uint64(len(payload)-4) {
		return nil, false
	}
	return payload[4 : 4+n], true
}

// Frame is one received message backed by a pooled buffer. Payload
// aliases that buffer, so the recipient must call Release exactly once
// when done with it — after Unmarshal (which copies all strings and
// byte slices out) the payload is never needed again.
type Frame struct {
	Header  Header
	Payload []byte
	buf     []byte
}

var framePool = sync.Pool{New: func() interface{} { return new(Frame) }}

func getFrame() *Frame { return framePool.Get().(*Frame) }

// Release returns the frame's buffer to the pool. The frame and its
// Payload must not be touched afterwards.
func (f *Frame) Release() {
	if f == nil {
		return
	}
	if cap(f.buf) > maxPooledFrame {
		f.buf = nil
	}
	f.Payload = nil
	f.Header = Header{}
	framePool.Put(f)
}

// grow returns b truncated to zero length with capacity for at least n
// bytes, reusing b's array when possible.
func grow(b []byte, n int) []byte {
	if cap(b) >= n {
		return b[:0]
	}
	return make([]byte, 0, n)
}

// codecError marks a WriteMarshal failure that happened while encoding
// the arguments — before any bytes reached the wire — so callers can
// report it as a marshalling problem rather than a transport one.
type codecError struct{ err error }

func (e *codecError) Error() string { return e.err.Error() }

func (e *codecError) Unwrap() error { return e.err }

// Conn frames messages over a stream transport. Reads and writes are
// independently serialised, so one goroutine may read while others
// write. EnableWriteCoalescing optionally batches small frames behind a
// flush-on-idle buffered writer.
type Conn struct {
	rmu sync.Mutex
	wmu sync.Mutex
	c   net.Conn

	// Write coalescing, nil/inactive by default. All three fields are
	// guarded by wmu except flushCh/stopCh signalling.
	bw       *bufio.Writer
	writeErr error
	flushCh  chan struct{}
	stopCh   chan struct{}
	stopOnce sync.Once
}

// NewConn wraps a stream connection.
func NewConn(c net.Conn) *Conn { return &Conn{c: c} }

// EnableWriteCoalescing switches the connection to buffered writes of up
// to size bytes with a flush-on-idle goroutine: each write signals the
// flusher, which drains whatever accumulated while it was scheduled, so
// bursts of small frames from concurrent callers leave in one syscall
// while a lone frame still flushes within a goroutine wakeup. Call it
// before the connection carries traffic; size <= 0 is a no-op.
func (c *Conn) EnableWriteCoalescing(size int) {
	if size <= 0 {
		return
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.bw != nil {
		return
	}
	c.bw = bufio.NewWriterSize(c.c, size)
	c.flushCh = make(chan struct{}, 1)
	c.stopCh = make(chan struct{})
	go c.flushLoop()
}

func (c *Conn) flushLoop() {
	for {
		select {
		case <-c.stopCh:
			return
		case <-c.flushCh:
		}
		c.wmu.Lock()
		if c.writeErr == nil && c.bw.Buffered() > 0 {
			if err := c.bw.Flush(); err != nil {
				c.writeErr = err
			} else {
				coalescedFlushes.Inc()
			}
		}
		c.wmu.Unlock()
	}
}

// Close closes the underlying transport after a best-effort flush of
// any coalesced frames still buffered.
func (c *Conn) Close() error {
	c.wmu.Lock()
	if c.bw != nil {
		if c.writeErr == nil {
			c.writeErr = c.bw.Flush()
		}
		c.stopOnce.Do(func() { close(c.stopCh) })
	}
	c.wmu.Unlock()
	return c.c.Close()
}

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.c.RemoteAddr() }

// LocalAddr returns the local address.
func (c *Conn) LocalAddr() net.Addr { return c.c.LocalAddr() }

// writeFrame sends one fully built frame under the write lock, through
// the coalescing writer when enabled.
func (c *Conn) writeFrame(buf []byte) error {
	c.wmu.Lock()
	if c.writeErr != nil {
		err := c.writeErr
		c.wmu.Unlock()
		return err
	}
	var n int
	var err error
	if c.bw != nil {
		n, err = c.bw.Write(buf)
		if err != nil {
			c.writeErr = err
		}
	} else {
		n, err = c.c.Write(buf)
	}
	flushCh := c.flushCh
	c.wmu.Unlock()
	if n > 0 {
		txBytes.Add(uint64(n))
	}
	if err == nil {
		txFrames.Inc()
		if flushCh != nil {
			select {
			case flushCh <- struct{}{}:
			default:
			}
		}
	}
	return err
}

// putFrameHeader writes the length word and header into buf[0:28].
func putFrameHeader(buf []byte, total uint32, h Header) {
	binary.BigEndian.PutUint32(buf[0:], total)
	binary.BigEndian.PutUint32(buf[4:], h.Program)
	binary.BigEndian.PutUint32(buf[8:], h.Version)
	binary.BigEndian.PutUint32(buf[12:], h.Procedure)
	binary.BigEndian.PutUint32(buf[16:], h.Type)
	binary.BigEndian.PutUint32(buf[20:], h.Serial)
	binary.BigEndian.PutUint32(buf[24:], h.Status)
}

// WriteMessage frames and sends one message. The frame is assembled in
// a pooled buffer, so the steady-state write path allocates nothing.
// The "rpc.send" faultpoint can drop the frame (reported as sent — the
// bytes just never leave, as on a lossy network), corrupt its payload,
// or fail the write outright.
func (c *Conn) WriteMessage(h Header, payload []byte) error {
	if spec, ok := faultpoint.Default.Eval("rpc.send"); ok {
		switch spec.Mode {
		case faultpoint.ModeDrop:
			faultsDropped.Inc()
			return nil
		case faultpoint.ModeCorrupt:
			payload = corruptCopy(payload)
			faultsCorrupted.Inc()
		case faultpoint.ModeError:
			if spec.Err != nil {
				return spec.Err
			}
			return fmt.Errorf("rpc: injected send fault")
		}
	}
	total := frameOverhead + len(payload)
	if total > MaxMessageLen {
		return fmt.Errorf("rpc: message of %d exceeds limit", total)
	}
	f := getFrame()
	buf := grow(f.buf, total)[:frameOverhead]
	putFrameHeader(buf, uint32(total), h)
	buf = append(buf, payload...)
	err := c.writeFrame(buf)
	f.buf = buf
	f.Release()
	return err
}

// WriteMarshal XDR-encodes args directly into the pooled frame buffer
// behind the header and sends the result: one buffer, zero payload
// copies, no per-call allocation. A nil args sends an empty payload.
// Encoding failures return a *codecError; everything else is a
// transport-level error. Fault injection semantics match WriteMessage,
// with the "rpc.send" faultpoint evaluated once the frame is built (a
// marshalling bug is reported even on a dropped frame).
func (c *Conn) WriteMarshal(h Header, args interface{}) error {
	f := getFrame()
	buf := grow(f.buf, 256)[:frameOverhead]
	if args != nil {
		var err error
		buf, err = AppendMarshal(buf, args)
		if err != nil {
			f.buf = buf
			f.Release()
			return &codecError{err}
		}
	}
	total := len(buf)
	if total > MaxMessageLen {
		f.buf = buf
		f.Release()
		return fmt.Errorf("rpc: message of %d exceeds limit", total)
	}
	putFrameHeader(buf, uint32(total), h)
	if spec, ok := faultpoint.Default.Eval("rpc.send"); ok {
		switch spec.Mode {
		case faultpoint.ModeDrop:
			faultsDropped.Inc()
			f.buf = buf
			f.Release()
			return nil
		case faultpoint.ModeCorrupt:
			corruptInPlace(buf[frameOverhead:])
			faultsCorrupted.Inc()
		case faultpoint.ModeError:
			f.buf = buf
			f.Release()
			if spec.Err != nil {
				return spec.Err
			}
			return fmt.Errorf("rpc: injected send fault")
		}
	}
	err := c.writeFrame(buf)
	f.buf = buf
	f.Release()
	return err
}

// ReadFrame receives one framed message into a pooled buffer. The
// caller owns the returned frame and must Release it once the payload
// has been consumed. The "rpc.recv" faultpoint can drop a received
// frame (the read loops on to the next one, as if the frame were lost
// in flight), corrupt its payload, or fail the read.
func (c *Conn) ReadFrame() (*Frame, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	f := getFrame()
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(c.c, lenBuf[:]); err != nil {
			f.Release()
			return nil, err
		}
		total := binary.BigEndian.Uint32(lenBuf[:])
		if total < frameOverhead || total > MaxMessageLen {
			f.Release()
			return nil, fmt.Errorf("rpc: invalid message length %d", total)
		}
		rest := grow(f.buf, int(total)-4)[:int(total)-4]
		f.buf = rest
		if _, err := io.ReadFull(c.c, rest); err != nil {
			f.Release()
			return nil, err
		}
		f.Header = Header{
			Program:   binary.BigEndian.Uint32(rest[0:]),
			Version:   binary.BigEndian.Uint32(rest[4:]),
			Procedure: binary.BigEndian.Uint32(rest[8:]),
			Type:      binary.BigEndian.Uint32(rest[12:]),
			Serial:    binary.BigEndian.Uint32(rest[16:]),
			Status:    binary.BigEndian.Uint32(rest[20:]),
		}
		rxFrames.Inc()
		rxBytes.Add(uint64(total))
		payload := rest[headerLen:]
		if spec, ok := faultpoint.Default.Eval("rpc.recv"); ok {
			switch spec.Mode {
			case faultpoint.ModeDrop:
				faultsDropped.Inc()
				continue // reuse the buffer for the next frame
			case faultpoint.ModeCorrupt:
				corruptInPlace(payload) // the buffer is ours; flip in place
				faultsCorrupted.Inc()
			case faultpoint.ModeError:
				f.Release()
				if spec.Err != nil {
					return nil, spec.Err
				}
				return nil, fmt.Errorf("rpc: injected recv fault")
			}
		}
		f.Payload = payload
		return f, nil
	}
}

// ReadMessage receives one framed message, copying the payload out of
// the pooled buffer. Callers on hot paths should prefer ReadFrame +
// Release; this convenience form exists for tests and simple loops.
func (c *Conn) ReadMessage() (Header, []byte, error) {
	f, err := c.ReadFrame()
	if err != nil {
		return Header{}, nil, err
	}
	h := f.Header
	payload := make([]byte, len(f.Payload))
	copy(payload, f.Payload)
	f.Release()
	return h, payload, nil
}

// corruptCopy returns a bit-flipped copy of a payload; the original is
// left alone so callers retrying with the same buffer are unaffected.
func corruptCopy(payload []byte) []byte {
	if len(payload) == 0 {
		return payload
	}
	out := make([]byte, len(payload))
	copy(out, payload)
	corruptInPlace(out)
	return out
}

// corruptInPlace bit-flips a payload the caller owns.
func corruptInPlace(p []byte) {
	if len(p) == 0 {
		return
	}
	p[0] ^= 0xff
	p[len(p)/2] ^= 0xa5
	p[len(p)-1] ^= 0xff
}
