package rpc

import (
	"net"
	"testing"
	"time"
)

// pongServer answers pings and proc-1 calls.
func pongServer(nc net.Conn) {
	conn := NewConn(nc)
	go func() {
		for {
			h, payload, err := conn.ReadMessage()
			if err != nil {
				return
			}
			switch MsgType(h.Type) {
			case TypePing:
				h.Type = uint32(TypePong)
				conn.WriteMessage(h, nil) //nolint:errcheck
			case TypeCall:
				h.Type = uint32(TypeReply)
				conn.WriteMessage(h, payload) //nolint:errcheck
			}
		}
	}()
}

func TestKeepaliveHealthyPeerStaysUp(t *testing.T) {
	a, b := net.Pipe()
	pongServer(b)
	// A generous miss budget keeps the test immune to scheduler stalls
	// on loaded single-core runners; the dead-peer test below covers the
	// opposite direction.
	cl := NewClientKeepalive(a, ProgramRemote, nil, KeepaliveConfig{
		Interval: 10 * time.Millisecond, Count: 50,
	})
	defer cl.Close()
	// Idle long enough for several probe rounds; pongs keep it alive.
	time.Sleep(120 * time.Millisecond)
	if err := cl.Call(1, nil, nil); err != nil {
		t.Fatalf("healthy connection was torn down: %v", err)
	}
}

func TestKeepaliveDetectsDeadPeer(t *testing.T) {
	a, b := net.Pipe()
	// Peer reads and discards everything: alive at TCP level, dead at
	// protocol level — the case keepalive exists for.
	go func() {
		conn := NewConn(b)
		for {
			if _, _, err := conn.ReadMessage(); err != nil {
				return
			}
		}
	}()
	cl := NewClientKeepalive(a, ProgramRemote, nil, KeepaliveConfig{
		Interval: 10 * time.Millisecond, Count: 2,
	})
	defer cl.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := cl.Call(1, nil, nil); err != nil {
			return // connection declared dead
		}
		if time.Now().After(deadline) {
			t.Fatal("dead peer never detected")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestKeepaliveClientAnswersServerProbes(t *testing.T) {
	a, b := net.Pipe()
	cl := NewClient(a, ProgramRemote, nil)
	defer cl.Close()
	conn := NewConn(b)
	if err := conn.WriteMessage(Header{Program: ProgramRemote, Type: uint32(TypePing)}, nil); err != nil {
		t.Fatal(err)
	}
	done := make(chan Header, 1)
	go func() {
		h, _, err := conn.ReadMessage()
		if err == nil {
			done <- h
		}
	}()
	select {
	case h := <-done:
		if MsgType(h.Type) != TypePong {
			t.Fatalf("got type %d, want pong", h.Type)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("client never answered ping")
	}
}

func TestKeepaliveConfigValid(t *testing.T) {
	if (KeepaliveConfig{}).Valid() {
		t.Fatal("zero config valid")
	}
	if (KeepaliveConfig{Interval: time.Second}).Valid() {
		t.Fatal("count-less config valid")
	}
	if !(KeepaliveConfig{Interval: time.Second, Count: 1}).Valid() {
		t.Fatal("proper config invalid")
	}
}
