package rpc

import (
	"testing"
)

// TestQoSRetryAfterRoundTrip pins that the retry-after hint survives
// the error-frame wire encoding: what the daemon marshals into an
// ErrorPayload comes back out of the client-side decode bit-exact.
func TestQoSRetryAfterRoundTrip(t *testing.T) {
	for _, ms := range []uint32{0, 1, 75, 100000} {
		in := ErrorPayload{Code: 18, Message: "overloaded: class \"bronze\" over its rate limit", RetryAfterMs: ms}
		buf, err := Marshal(&in)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var out ErrorPayload
		if err := Unmarshal(buf, &out); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if out != in {
			t.Fatalf("round trip lost data: %+v vs %+v", out, in)
		}
		re := &RemoteError{Code: out.Code, Message: out.Message, RetryAfterMs: out.RetryAfterMs}
		if re.RetryAfterMs != ms {
			t.Fatalf("RemoteError dropped the hint: %d vs %d", re.RetryAfterMs, ms)
		}
	}
}

// TestQoSPeekString covers the alloc-free payload peek the ACL check
// uses to read a call's leading object string.
func TestQoSPeekString(t *testing.T) {
	type nameArgs struct{ Name string }
	buf, err := Marshal(&nameArgs{Name: "vm-17"})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := PeekString(buf)
	if !ok || string(got) != "vm-17" {
		t.Fatalf("PeekString = %q, %v", got, ok)
	}

	// Structs that do not lead with a string yield garbage-or-nothing,
	// never a panic: a length prefix larger than the payload reports
	// false.
	if _, ok := PeekString(nil); ok {
		t.Fatal("PeekString(nil) reported ok")
	}
	if _, ok := PeekString([]byte{0, 0}); ok {
		t.Fatal("PeekString(short) reported ok")
	}
	if _, ok := PeekString([]byte{0xff, 0xff, 0xff, 0xff}); ok {
		t.Fatal("PeekString(oversized length) reported ok")
	}
	// Empty leading string: valid, empty view.
	buf, _ = Marshal(&nameArgs{})
	if got, ok := PeekString(buf); !ok || len(got) != 0 {
		t.Fatalf("PeekString(empty string) = %q, %v", got, ok)
	}
}
