package rpc

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sync"
	"unsafe"
)

// Compiled codec plans. The reflective walk in xdr.go visits every field
// through reflect.Value on every call; steady-state RPC traffic encodes
// the same handful of wire structs millions of times, so the per-field
// dispatch dominates small-call cost. A plan compiles a struct type once
// into a flat list of ops — accumulated field offset plus primitive kind
// — and executes it with direct unsafe loads/stores. Nested structs
// flatten into the parent's op list; only slices keep a sub-plan, run
// per element. Types the compiler cannot express (pointers, maps,
// interfaces, recursion) fall back to the reflective path, which remains
// the semantic reference.

type opKind uint8

const (
	opBool opKind = iota
	opI32
	opU32
	opI64
	opU64
	opInt
	opUint
	opF64
	opString
	opBytes
	opSlice
	opRun
)

// planOp is one encode/decode step at an offset from the struct base.
type planOp struct {
	kind opKind
	off  uintptr
	name string // qualified field name, used only on error paths

	// Slice ops carry the element sub-plan and the reflect machinery
	// needed to allocate GC-typed backing arrays on decode.
	elem     *codecPlan
	typ      reflect.Type // the slice type itself
	elemSize uintptr

	// Run ops fuse consecutive fixed-width fields: runBytes wire bytes
	// handled with a single bounds/capacity check, then each sub-op
	// loads/stores at a precomputed wire offset.
	run      []planOp
	runBytes int
}

// fixedWireSize returns the encoded size of a fixed-width op, or 0 for
// variable-length ops.
func fixedWireSize(k opKind) int {
	switch k {
	case opBool, opI32, opU32:
		return 4
	case opI64, opU64, opInt, opUint, opF64:
		return 8
	}
	return 0
}

// coalesceRuns rewrites every maximal sequence of two or more
// fixed-width ops into one opRun, recursing into slice element plans.
// Wire-struct traffic is dominated by runs of counters and ids, so this
// turns most of a message into a handful of bounds checks.
func coalesceRuns(ops []planOp) []planOp {
	out := make([]planOp, 0, len(ops))
	for i := 0; i < len(ops); {
		if ops[i].kind == opSlice {
			ops[i].elem.ops = coalesceRuns(ops[i].elem.ops)
			out = append(out, ops[i])
			i++
			continue
		}
		j := i
		bytes := 0
		for j < len(ops) {
			n := fixedWireSize(ops[j].kind)
			if n == 0 {
				break
			}
			bytes += n
			j++
		}
		if j-i >= 2 {
			out = append(out, planOp{kind: opRun, run: ops[i:j:j], runBytes: bytes})
			i = j
			continue
		}
		out = append(out, ops[i])
		i++
	}
	return out
}

type codecPlan struct {
	ops []planOp
}

// sliceHeader mirrors the runtime slice layout for reflection-free
// reads on the encode path and capacity reuse on decode. Fresh backing
// arrays are still allocated through reflect.MakeSlice so the GC sees
// them; reuse only ever shrinks or restores len within existing cap.
type sliceHeader struct {
	data unsafe.Pointer
	len  int
	cap  int
}

// planCache maps reflect.Type → *codecPlan. A stored nil marks a type
// the compiler rejected, so the fallback decision is also one lookup.
var planCache sync.Map

// planFor returns the compiled plan for a struct type, or nil when the
// type needs the reflective path.
func planFor(t reflect.Type) *codecPlan {
	if v, ok := planCache.Load(t); ok {
		p, _ := v.(*codecPlan)
		return p
	}
	p, err := compilePlan(t)
	if err != nil {
		p = nil
	}
	planCache.Store(t, p)
	return p
}

func compilePlan(t reflect.Type) (*codecPlan, error) {
	if t.Kind() != reflect.Struct {
		return nil, fmt.Errorf("xdr: plan: not a struct: %s", t)
	}
	p := &codecPlan{}
	if err := addStructOps(p, t, 0, t.Name(), map[reflect.Type]bool{}); err != nil {
		return nil, err
	}
	p.ops = coalesceRuns(p.ops)
	return p, nil
}

// addStructOps flattens a struct's exported fields into the plan with
// offsets accumulated from base. inProgress guards against recursive
// types (reachable only through slices), which fall back to reflection.
func addStructOps(p *codecPlan, t reflect.Type, base uintptr, prefix string, inProgress map[reflect.Type]bool) error {
	if inProgress[t] {
		return fmt.Errorf("xdr: plan: recursive type %s", t)
	}
	inProgress[t] = true
	defer delete(inProgress, t)
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue // matches the reflective walk
		}
		if err := addFieldOp(p, f.Type, base+f.Offset, prefix+"."+f.Name, inProgress); err != nil {
			return err
		}
	}
	return nil
}

func addFieldOp(p *codecPlan, t reflect.Type, off uintptr, name string, inProgress map[reflect.Type]bool) error {
	simple := func(k opKind) {
		p.ops = append(p.ops, planOp{kind: k, off: off, name: name})
	}
	switch t.Kind() {
	case reflect.Bool:
		simple(opBool)
	case reflect.Int32:
		simple(opI32)
	case reflect.Uint32:
		simple(opU32)
	case reflect.Int64:
		simple(opI64)
	case reflect.Uint64:
		simple(opU64)
	case reflect.Int:
		simple(opInt)
	case reflect.Uint:
		simple(opUint)
	case reflect.Float64:
		simple(opF64)
	case reflect.String:
		simple(opString)
	case reflect.Slice:
		if t.Elem().Kind() == reflect.Uint8 {
			simple(opBytes)
			return nil
		}
		sub := &codecPlan{}
		if err := addFieldOp(sub, t.Elem(), 0, name+"[]", inProgress); err != nil {
			return err
		}
		p.ops = append(p.ops, planOp{
			kind: opSlice, off: off, name: name,
			elem: sub, typ: t, elemSize: t.Elem().Size(),
		})
	case reflect.Struct:
		return addStructOps(p, t, off, name, inProgress)
	default:
		return fmt.Errorf("xdr: plan: unsupported kind %s at %s", t.Kind(), name)
	}
	return nil
}

// planSize walks the value once and returns the exact encoded size, so
// the encode pass can grow the destination buffer in a single step.
func planSize(ops []planOp, base unsafe.Pointer) int {
	n := 0
	for i := range ops {
		op := &ops[i]
		p := unsafe.Add(base, op.off)
		switch op.kind {
		case opBool, opI32, opU32:
			n += 4
		case opI64, opU64, opInt, opUint, opF64:
			n += 8
		case opString:
			n += 4 + pad4(len(*(*string)(p)))
		case opBytes:
			n += 4 + pad4(len(*(*[]byte)(p)))
		case opSlice:
			sh := (*sliceHeader)(p)
			n += 4
			for j := 0; j < sh.len; j++ {
				n += planSize(op.elem.ops, unsafe.Add(sh.data, uintptr(j)*op.elemSize))
			}
		case opRun:
			n += op.runBytes
		}
	}
	return n
}

func pad4(n int) int { return n + (4-n%4)%4 }

func appendU32(buf []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(buf, v)
}

func appendU64(buf []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(buf, v)
}

var zeroPad [4]byte

func appendPadded(buf, b []byte) []byte {
	buf = append(buf, b...)
	return append(buf, zeroPad[:(4-len(b)%4)%4]...)
}

// appendPlan executes the encode ops against the struct at base.
func appendPlan(buf []byte, ops []planOp, base unsafe.Pointer) ([]byte, error) {
	for i := range ops {
		op := &ops[i]
		p := unsafe.Add(base, op.off)
		switch op.kind {
		case opBool:
			if *(*bool)(p) {
				buf = appendU32(buf, 1)
			} else {
				buf = appendU32(buf, 0)
			}
		case opI32:
			buf = appendU32(buf, uint32(*(*int32)(p)))
		case opU32:
			buf = appendU32(buf, *(*uint32)(p))
		case opI64:
			buf = appendU64(buf, uint64(*(*int64)(p)))
		case opU64:
			buf = appendU64(buf, *(*uint64)(p))
		case opInt:
			buf = appendU64(buf, uint64(*(*int)(p)))
		case opUint:
			buf = appendU64(buf, uint64(*(*uint)(p)))
		case opF64:
			buf = appendU64(buf, math.Float64bits(*(*float64)(p)))
		case opString:
			s := *(*string)(p)
			if len(s) > MaxStringLen {
				return nil, fmt.Errorf("%s: xdr: byte string of %d exceeds limit", op.name, len(s))
			}
			buf = appendU32(buf, uint32(len(s)))
			buf = append(buf, s...)
			buf = append(buf, zeroPad[:(4-len(s)%4)%4]...)
		case opBytes:
			b := *(*[]byte)(p)
			if len(b) > MaxStringLen {
				return nil, fmt.Errorf("%s: xdr: byte string of %d exceeds limit", op.name, len(b))
			}
			buf = appendU32(buf, uint32(len(b)))
			buf = appendPadded(buf, b)
		case opSlice:
			sh := (*sliceHeader)(p)
			if sh.len > MaxArrayLen {
				return nil, fmt.Errorf("%s: xdr: array of %d exceeds limit", op.name, sh.len)
			}
			buf = appendU32(buf, uint32(sh.len))
			var err error
			for j := 0; j < sh.len; j++ {
				buf, err = appendPlan(buf, op.elem.ops, unsafe.Add(sh.data, uintptr(j)*op.elemSize))
				if err != nil {
					return nil, err
				}
			}
		case opRun:
			// One capacity check covers the whole run; fields then write
			// at precomputed offsets with no per-field growth.
			w := len(buf)
			if cap(buf)-w < op.runBytes {
				nb := make([]byte, w, (w+op.runBytes)+(w+op.runBytes)/2)
				copy(nb, buf)
				buf = nb
			}
			buf = buf[:w+op.runBytes]
			for k := range op.run {
				f := &op.run[k]
				q := unsafe.Add(base, f.off)
				switch f.kind {
				case opBool:
					var v uint32
					if *(*bool)(q) {
						v = 1
					}
					binary.BigEndian.PutUint32(buf[w:], v)
					w += 4
				case opI32:
					binary.BigEndian.PutUint32(buf[w:], uint32(*(*int32)(q)))
					w += 4
				case opU32:
					binary.BigEndian.PutUint32(buf[w:], *(*uint32)(q))
					w += 4
				case opI64:
					binary.BigEndian.PutUint64(buf[w:], uint64(*(*int64)(q)))
					w += 8
				case opU64:
					binary.BigEndian.PutUint64(buf[w:], *(*uint64)(q))
					w += 8
				case opInt:
					binary.BigEndian.PutUint64(buf[w:], uint64(*(*int)(q)))
					w += 8
				case opUint:
					binary.BigEndian.PutUint64(buf[w:], uint64(*(*uint)(q)))
					w += 8
				case opF64:
					binary.BigEndian.PutUint64(buf[w:], math.Float64bits(*(*float64)(q)))
					w += 8
				}
			}
		}
	}
	return buf, nil
}

// byteArena batches the many small string allocations of one decode
// pass into shared chunks: a bulk reply carrying hundreds of domain
// names costs one or two allocations instead of one per name. Chunks
// are append-only, so handed-out slices are never rewritten; a chunk
// never exceeds the bytes remaining in the message, bounding retained
// waste by the message size.
type byteArena struct {
	buf []byte
}

func (a *byteArena) alloc(n, remaining int) []byte {
	const chunk = 1024
	if n >= chunk/2 {
		return make([]byte, n)
	}
	if cap(a.buf)-len(a.buf) < n {
		c := chunk
		if remaining < c {
			c = remaining
		}
		a.buf = make([]byte, 0, c)
	}
	s := a.buf[len(a.buf) : len(a.buf)+n : len(a.buf)+n]
	a.buf = a.buf[:len(a.buf)+n]
	return s
}

// decodePlan executes the decode ops into the struct at base, returning
// the new read position. Semantics mirror the reflective decoder
// exactly (bool > 1 rejected, empty strings/bytes decode to non-nil
// zero-length values, limits enforced before allocation).
func decodePlan(buf []byte, pos int, ops []planOp, base unsafe.Pointer, a *byteArena) (int, error) {
	for i := range ops {
		op := &ops[i]
		p := unsafe.Add(base, op.off)
		switch op.kind {
		case opBool, opI32, opU32:
			if pos+4 > len(buf) {
				return pos, fmt.Errorf("xdr: truncated input at %d", pos)
			}
			u := binary.BigEndian.Uint32(buf[pos:])
			pos += 4
			switch op.kind {
			case opBool:
				if u > 1 {
					return pos, fmt.Errorf("%s: xdr: bool value %d", op.name, u)
				}
				*(*bool)(p) = u == 1
			case opI32:
				*(*int32)(p) = int32(u)
			default:
				*(*uint32)(p) = u
			}
		case opI64, opU64, opInt, opUint, opF64:
			if pos+8 > len(buf) {
				return pos, fmt.Errorf("xdr: truncated input at %d", pos)
			}
			u := binary.BigEndian.Uint64(buf[pos:])
			pos += 8
			switch op.kind {
			case opI64:
				*(*int64)(p) = int64(u)
			case opU64:
				*(*uint64)(p) = u
			case opInt:
				*(*int)(p) = int(u)
			case opUint:
				*(*uint)(p) = uint(u)
			default:
				*(*float64)(p) = math.Float64frombits(u)
			}
		case opString, opBytes:
			if pos+4 > len(buf) {
				return pos, fmt.Errorf("xdr: truncated input at %d", pos)
			}
			n := binary.BigEndian.Uint32(buf[pos:])
			pos += 4
			if n > MaxStringLen {
				return pos, fmt.Errorf("%s: xdr: byte string of %d exceeds limit", op.name, n)
			}
			padded := pad4(int(n))
			if pos+padded > len(buf) {
				return pos, fmt.Errorf("xdr: truncated byte string at %d", pos-4)
			}
			if op.kind == opString {
				if n == 0 {
					*(*string)(p) = ""
				} else if ex := *(*string)(p); len(ex) == int(n) && ex == string(buf[pos:pos+int(n)]) {
					// Decoding over a previous value whose bytes match
					// (stable names across monitoring sweeps): keep the
					// existing string, allocate nothing.
				} else {
					s := a.alloc(int(n), len(buf)-pos)
					copy(s, buf[pos:])
					*(*string)(p) = unsafe.String(&s[0], len(s))
				}
			} else {
				out := make([]byte, n)
				copy(out, buf[pos:])
				*(*[]byte)(p) = out
			}
			pos += padded
		case opSlice:
			if pos+4 > len(buf) {
				return pos, fmt.Errorf("xdr: truncated input at %d", pos)
			}
			n := int(binary.BigEndian.Uint32(buf[pos:]))
			pos += 4
			if n > MaxArrayLen {
				return pos, fmt.Errorf("%s: xdr: array of %d exceeds limit", op.name, n)
			}
			// Decoding over a slice with enough capacity reuses its
			// backing array (every element field is overwritten below),
			// so a steady-state poller pays no per-sweep allocation.
			// The caller opts in by passing a retained value; fresh
			// destinations are zero and always take the MakeSlice path.
			var eb unsafe.Pointer
			if sh := (*sliceHeader)(p); n > 0 && sh.data != nil && sh.cap >= n {
				sh.len = n
				eb = sh.data
			} else {
				sv := reflect.MakeSlice(op.typ, n, n)
				if n > 0 {
					eb = sv.Index(0).Addr().UnsafePointer()
				}
				reflect.NewAt(op.typ, p).Elem().Set(sv)
			}
			var err error
			for j := 0; j < n; j++ {
				pos, err = decodePlan(buf, pos, op.elem.ops, unsafe.Add(eb, uintptr(j)*op.elemSize), a)
				if err != nil {
					return pos, err
				}
			}
		case opRun:
			// One truncation check covers the whole run.
			if pos+op.runBytes > len(buf) {
				return pos, fmt.Errorf("xdr: truncated input at %d", pos)
			}
			for k := range op.run {
				f := &op.run[k]
				q := unsafe.Add(base, f.off)
				switch f.kind {
				case opBool:
					u := binary.BigEndian.Uint32(buf[pos:])
					pos += 4
					if u > 1 {
						return pos, fmt.Errorf("%s: xdr: bool value %d", f.name, u)
					}
					*(*bool)(q) = u == 1
				case opI32:
					*(*int32)(q) = int32(binary.BigEndian.Uint32(buf[pos:]))
					pos += 4
				case opU32:
					*(*uint32)(q) = binary.BigEndian.Uint32(buf[pos:])
					pos += 4
				case opI64:
					*(*int64)(q) = int64(binary.BigEndian.Uint64(buf[pos:]))
					pos += 8
				case opU64:
					*(*uint64)(q) = binary.BigEndian.Uint64(buf[pos:])
					pos += 8
				case opInt:
					*(*int)(q) = int(binary.BigEndian.Uint64(buf[pos:]))
					pos += 8
				case opUint:
					*(*uint)(q) = uint(binary.BigEndian.Uint64(buf[pos:]))
					pos += 8
				case opF64:
					*(*float64)(q) = math.Float64frombits(binary.BigEndian.Uint64(buf[pos:]))
					pos += 8
				}
			}
		}
	}
	return pos, nil
}
