package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// EventHandler receives unsolicited server messages (procedure + raw
// payload). It runs on the client's reader goroutine and must not block.
type EventHandler func(procedure uint32, payload []byte)

// pendingShards is the size of the pending-call table; a power of two so
// the shard index is a mask. Sixteen shards keep lock contention
// negligible even with dozens of goroutines calling concurrently.
const pendingShards = 16

type pendingShard struct {
	mu sync.Mutex
	m  map[uint32]chan reply
}

// maxPongWriteFailures is how many consecutive pong replies may fail to
// send before the client declares the connection dead. One failure can
// be an injected fault or a transient buffer problem; a run of them
// means the write side is gone while the read side still limps along,
// and the peer's keepalive will kill us anyway — better to fail fast.
const maxPongWriteFailures = 3

// Client drives the call side of a connection: it assigns serials,
// matches replies, and forwards events. Multiple goroutines may call
// concurrently; replies are routed by serial, so slow calls do not block
// fast ones. The serial counter is atomic and the pending table is
// sharded, so concurrent callers do not serialise on a single lock.
type Client struct {
	program uint32
	conn    *Conn

	serial atomic.Uint32
	shards [pendingShards]pendingShard

	closed  atomic.Bool
	errMu   sync.Mutex
	readErr error

	pongFails int // consecutive pong send failures; readLoop-only

	lastRx      atomic.Int64 // unix nanos of the last received message
	callTimeout atomic.Int64 // default per-call deadline in nanos; 0 = none
	onEvent     EventHandler
}

type reply struct {
	status  Status
	payload []byte
	frame   *Frame // pooled backing of payload; released after decode
}

func (r *reply) release() {
	if r.frame != nil {
		r.frame.Release()
		r.frame = nil
	}
}

// replyChanPool recycles the one-shot reply channels: every call needs
// one, and steady-state traffic would otherwise allocate a fresh channel
// per round trip. A channel is recycled only when it is provably empty
// and unreachable by the reader (see CallContext); channels closed by
// failAll or racing an in-flight send are left to the GC.
var replyChanPool = sync.Pool{
	New: func() interface{} { return make(chan reply, 1) },
}

// timerPool recycles the per-call deadline timers, saving the timer and
// context allocations that would otherwise dominate a round trip's
// allocation budget.
var timerPool = sync.Pool{
	New: func() interface{} {
		t := time.NewTimer(time.Hour)
		t.Stop()
		return t
	},
}

func putTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}

// NewClient wraps an established transport connection for the given
// program and starts the reply reader.
func NewClient(nc net.Conn, program uint32, onEvent EventHandler) *Client {
	return NewClientKeepalive(nc, program, onEvent, KeepaliveConfig{})
}

// NewClientKeepalive is NewClient with dead-peer detection enabled when
// ka is valid.
func NewClientKeepalive(nc net.Conn, program uint32, onEvent EventHandler, ka KeepaliveConfig) *Client {
	c := &Client{
		program: program,
		conn:    NewConn(nc),
		onEvent: onEvent,
	}
	for i := range c.shards {
		c.shards[i].m = make(map[uint32]chan reply)
	}
	c.noteTraffic()
	go c.readLoop()
	if ka.Valid() {
		c.startKeepalive(ka)
	}
	return c
}

// EnableWriteCoalescing batches this client's outgoing frames behind a
// flush-on-idle buffered writer of the given size. Call it right after
// construction, before issuing calls.
func (c *Client) EnableWriteCoalescing(size int) {
	c.conn.EnableWriteCoalescing(size)
}

// Close tears the connection down; in-flight calls fail.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	return c.conn.Close()
}

// Alive reports whether the client is still usable: false after Close
// or once the transport failed (read error, keepalive timeout — any
// path through failAll). One atomic load, no round trip, so health
// checks of idle connections stay traffic-free.
func (c *Client) Alive() bool { return !c.closed.Load() }

func (c *Client) shard(serial uint32) *pendingShard {
	return &c.shards[serial%pendingShards]
}

// register assigns the next free serial and parks ch under it. A serial
// still pending from a wrapped-around earlier call is skipped, so a
// slow in-flight call can never have its reply stolen by a new one.
func (c *Client) register(ch chan reply) (uint32, bool) {
	for {
		s := c.serial.Add(1)
		if s == 0 {
			continue // serial 0 is never assigned
		}
		sh := c.shard(s)
		sh.mu.Lock()
		if _, busy := sh.m[s]; busy {
			sh.mu.Unlock()
			continue // wraparound landed on a still-pending call
		}
		sh.m[s] = ch
		sh.mu.Unlock()
		if c.closed.Load() {
			// failAll may have drained the shard before our insert; undo.
			// If the entry is still ours the channel was never shared and
			// can be recycled; if failAll got there first it closed it.
			if _, ok := c.take(s); ok {
				replyChanPool.Put(ch)
			}
			return 0, false
		}
		return s, true
	}
}

// reclaim resolves a call abandoned at its deadline. If the pending
// entry is still present the reader never answered: remove it (making
// the channel unreachable, hence reusable) and report abandonment.
// Otherwise the reply may have raced the deadline into the channel
// buffer; use it if it landed.
func (c *Client) reclaim(serial uint32, ch chan reply) (r reply, got, abandoned bool) {
	if _, pending := c.take(serial); pending {
		replyChanPool.Put(ch)
		return reply{}, false, true
	}
	select {
	case r, got = <-ch:
	default:
	}
	if !got {
		// The reader removed the entry but its send has not landed yet
		// (or failAll closed the channel); this channel may still receive
		// and must not be recycled.
		return reply{}, false, true
	}
	return r, true, false
}

// take removes and returns the channel pending under serial.
func (c *Client) take(serial uint32) (chan reply, bool) {
	sh := c.shard(serial)
	sh.mu.Lock()
	ch, ok := sh.m[serial]
	if ok {
		delete(sh.m, serial)
	}
	sh.mu.Unlock()
	return ch, ok
}

func (c *Client) readLoop() {
	for {
		f, err := c.conn.ReadFrame()
		if err != nil {
			c.failAll(err)
			return
		}
		c.noteTraffic()
		h := f.Header
		switch MsgType(h.Type) {
		case TypePing:
			// Server-initiated probe: answer immediately. A failed pong
			// write is counted, and a persistent run of them tears the
			// connection down instead of silently looping while the
			// peer concludes we are dead.
			f.Release()
			pong := h
			pong.Type = uint32(TypePong)
			if err := c.conn.WriteMessage(pong, nil); err != nil {
				pongWriteFails.Inc()
				c.pongFails++
				if c.pongFails >= maxPongWriteFailures {
					c.failAll(fmt.Errorf("rpc: pong send failed %d times: %w", c.pongFails, err))
					c.conn.Close()
					return
				}
			} else {
				c.pongFails = 0
			}
		case TypePong:
			// Traffic note above is all a pong needs.
			f.Release()
			kaPongsRcvd.Inc()
		case TypeReply:
			if ch, ok := c.take(h.Serial); ok {
				// The frame travels with the reply; the caller releases
				// it after decoding. Channel capacity 1 guarantees the
				// send never blocks the reader.
				ch <- reply{status: Status(h.Status), payload: f.Payload, frame: f}
			} else {
				f.Release() // abandoned at its deadline; discard
			}
		case TypeEvent:
			if c.onEvent != nil {
				c.onEvent(h.Procedure, f.Payload)
			}
			f.Release()
		default:
			// A Call arriving at a client is a protocol violation; drop
			// the connection rather than guessing.
			f.Release()
			c.failAll(fmt.Errorf("rpc: unexpected message type %d from server", h.Type))
			c.conn.Close()
			return
		}
	}
}

func (c *Client) failAll(err error) {
	c.errMu.Lock()
	if c.readErr == nil {
		c.readErr = err
	}
	c.errMu.Unlock()
	c.closed.Store(true)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for serial, ch := range sh.m {
			delete(sh.m, serial)
			close(ch)
		}
		sh.mu.Unlock()
	}
}

func (c *Client) lastErr() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.readErr
}

// SetCallTimeout sets the default deadline applied to every Call (and to
// CallContext invocations whose context carries no deadline of its own).
// Zero disables the default, restoring unbounded waits.
func (c *Client) SetCallTimeout(d time.Duration) {
	c.callTimeout.Store(int64(d))
}

// CallTimeout returns the default per-call deadline (zero = none).
func (c *Client) CallTimeout() time.Duration {
	return time.Duration(c.callTimeout.Load())
}

// Call invokes a procedure: args are XDR-marshalled, the reply payload is
// XDR-unmarshalled into ret (which may be nil for void returns). Error
// replies decode the standard error payload. The client's default call
// timeout, if set, bounds the wait.
func (c *Client) Call(procedure uint32, args interface{}, ret interface{}) error {
	return c.CallContext(context.Background(), procedure, args, ret)
}

// CallContext is Call bounded by a context. When ctx has no deadline and
// the client has a default call timeout, that timeout applies. A call
// abandoned at its deadline returns a *TransportError (Op "deadline")
// wrapping ctx's error; the reply, if it ever arrives, is discarded by
// the reader since the pending entry is gone.
func (c *Client) CallContext(ctx context.Context, procedure uint32, args interface{}, ret interface{}) error {
	if c.closed.Load() {
		if readErr := c.lastErr(); readErr != nil {
			return &TransportError{Op: "call", Err: fmt.Errorf("connection failed: %w", readErr)}
		}
		return &TransportError{Op: "call", Err: fmt.Errorf("client is closed")}
	}
	// A caller-supplied context deadline is honoured as-is; the client's
	// default call timeout is enforced with a pooled timer instead of a
	// derived context, which would cost several allocations per call.
	var timeoutC <-chan time.Time
	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		if d := c.CallTimeout(); d > 0 {
			t := timerPool.Get().(*time.Timer)
			t.Reset(d)
			defer putTimer(t)
			timeoutC = t.C
		}
	}
	ch := replyChanPool.Get().(chan reply)
	serial, ok := c.register(ch)
	if !ok {
		if readErr := c.lastErr(); readErr != nil {
			return &TransportError{Op: "call", Err: fmt.Errorf("connection failed: %w", readErr)}
		}
		return &TransportError{Op: "call", Err: fmt.Errorf("client is closed")}
	}

	h := Header{
		Program:   c.program,
		Version:   ProtocolVersion,
		Procedure: procedure,
		Type:      uint32(TypeCall),
		Serial:    serial,
	}
	// Args are encoded straight into the pooled frame buffer — no
	// intermediate payload allocation.
	if err := c.conn.WriteMarshal(h, args); err != nil {
		if _, pending := c.take(serial); pending {
			// The reader never saw this serial; the channel is untouched.
			replyChanPool.Put(ch)
		}
		var ce *codecError
		if errors.As(err, &ce) {
			return fmt.Errorf("rpc: marshal args for proc %d: %w", procedure, ce.err)
		}
		return &TransportError{Op: "send", Err: fmt.Errorf("send proc %d: %w", procedure, err)}
	}

	var r reply
	var got bool
	var abandoned bool
	select {
	case r, got = <-ch:
	case <-ctx.Done():
		r, got, abandoned = c.reclaim(serial, ch)
		if abandoned {
			callsDeadlined.Inc()
			return &TransportError{Op: "deadline", Err: fmt.Errorf("proc %d abandoned: %w", procedure, ctx.Err())}
		}
	case <-timeoutC:
		r, got, abandoned = c.reclaim(serial, ch)
		if abandoned {
			callsDeadlined.Inc()
			return &TransportError{Op: "deadline", Err: fmt.Errorf("proc %d abandoned: %w", procedure, context.DeadlineExceeded)}
		}
	}
	if !got {
		// failAll closed the channel; it must not be recycled.
		return &TransportError{Op: "recv", Err: fmt.Errorf("connection lost awaiting proc %d: %v", procedure, c.lastErr())}
	}
	// The reader delivered exactly one reply and forgot the serial; the
	// drained channel is safe to reuse.
	replyChanPool.Put(ch)
	if r.status == StatusError {
		var ep ErrorPayload
		err := Unmarshal(r.payload, &ep)
		r.release()
		if err != nil {
			return fmt.Errorf("rpc: proc %d failed with undecodable error: %v", procedure, err)
		}
		return &RemoteError{Code: ep.Code, Message: ep.Message, RetryAfterMs: ep.RetryAfterMs}
	}
	var uerr error
	if ret != nil {
		uerr = Unmarshal(r.payload, ret)
	}
	r.release()
	if uerr != nil {
		return fmt.Errorf("rpc: unmarshal reply for proc %d: %w", procedure, uerr)
	}
	return nil
}

// RemoteError is a server-reported failure with its transported code.
// RetryAfterMs carries the server's backoff hint on overload
// rejections (0 = none).
type RemoteError struct {
	Code         uint32
	Message      string
	RetryAfterMs uint32
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote error %d: %s", e.Code, e.Message)
}

// TransportError is a connection-level failure: the peer could not be
// reached, the send failed, or the connection died before the reply
// arrived. It is distinct from RemoteError (the server processed the
// call and reported a failure), so callers managing many hosts can tell
// "this daemon is gone" apart from "this operation is invalid" and
// retry elsewhere.
type TransportError struct {
	Op  string // "call", "send" or "recv"
	Err error
}

func (e *TransportError) Error() string { return fmt.Sprintf("rpc: %v", e.Err) }

func (e *TransportError) Unwrap() error { return e.Err }
