package rpc

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// EventHandler receives unsolicited server messages (procedure + raw
// payload). It runs on the client's reader goroutine and must not block.
type EventHandler func(procedure uint32, payload []byte)

// Client drives the call side of a connection: it assigns serials,
// matches replies, and forwards events. Multiple goroutines may call
// concurrently; replies are routed by serial, so slow calls do not block
// fast ones.
type Client struct {
	program uint32
	conn    *Conn

	mu      sync.Mutex
	serial  uint32
	pending map[uint32]chan reply
	closed  bool
	readErr error

	lastRx      atomic.Int64 // unix nanos of the last received message
	callTimeout atomic.Int64 // default per-call deadline in nanos; 0 = none
	onEvent     EventHandler
}

type reply struct {
	status  Status
	payload []byte
}

// NewClient wraps an established transport connection for the given
// program and starts the reply reader.
func NewClient(nc net.Conn, program uint32, onEvent EventHandler) *Client {
	return NewClientKeepalive(nc, program, onEvent, KeepaliveConfig{})
}

// NewClientKeepalive is NewClient with dead-peer detection enabled when
// ka is valid.
func NewClientKeepalive(nc net.Conn, program uint32, onEvent EventHandler, ka KeepaliveConfig) *Client {
	c := &Client{
		program: program,
		conn:    NewConn(nc),
		pending: make(map[uint32]chan reply),
		onEvent: onEvent,
	}
	c.noteTraffic()
	go c.readLoop()
	if ka.Valid() {
		c.startKeepalive(ka)
	}
	return c
}

// Close tears the connection down; in-flight calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}

func (c *Client) readLoop() {
	for {
		h, payload, err := c.conn.ReadMessage()
		if err != nil {
			c.failAll(err)
			return
		}
		c.noteTraffic()
		switch MsgType(h.Type) {
		case TypePing:
			// Server-initiated probe: answer immediately.
			pong := h
			pong.Type = uint32(TypePong)
			c.conn.WriteMessage(pong, nil) //nolint:errcheck
		case TypePong:
			// Traffic note above is all a pong needs.
			kaPongsRcvd.Inc()
		case TypeReply:
			c.mu.Lock()
			ch, ok := c.pending[h.Serial]
			if ok {
				delete(c.pending, h.Serial)
			}
			c.mu.Unlock()
			if ok {
				ch <- reply{status: Status(h.Status), payload: payload}
			}
		case TypeEvent:
			if c.onEvent != nil {
				c.onEvent(h.Procedure, payload)
			}
		default:
			// A Call arriving at a client is a protocol violation; drop
			// the connection rather than guessing.
			c.failAll(fmt.Errorf("rpc: unexpected message type %d from server", h.Type))
			c.conn.Close()
			return
		}
	}
}

func (c *Client) failAll(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.readErr = err
	c.closed = true
	for serial, ch := range c.pending {
		delete(c.pending, serial)
		close(ch)
	}
}

// SetCallTimeout sets the default deadline applied to every Call (and to
// CallContext invocations whose context carries no deadline of its own).
// Zero disables the default, restoring unbounded waits.
func (c *Client) SetCallTimeout(d time.Duration) {
	c.callTimeout.Store(int64(d))
}

// CallTimeout returns the default per-call deadline (zero = none).
func (c *Client) CallTimeout() time.Duration {
	return time.Duration(c.callTimeout.Load())
}

// Call invokes a procedure: args are XDR-marshalled, the reply payload is
// XDR-unmarshalled into ret (which may be nil for void returns). Error
// replies decode the standard error payload. The client's default call
// timeout, if set, bounds the wait.
func (c *Client) Call(procedure uint32, args interface{}, ret interface{}) error {
	return c.CallContext(context.Background(), procedure, args, ret)
}

// CallContext is Call bounded by a context. When ctx has no deadline and
// the client has a default call timeout, that timeout applies. A call
// abandoned at its deadline returns a *TransportError (Op "deadline")
// wrapping ctx's error; the reply, if it ever arrives, is discarded by
// the reader since the pending entry is gone.
func (c *Client) CallContext(ctx context.Context, procedure uint32, args interface{}, ret interface{}) error {
	var payload []byte
	var err error
	if args != nil {
		payload, err = Marshal(args)
		if err != nil {
			return fmt.Errorf("rpc: marshal args for proc %d: %w", procedure, err)
		}
	}
	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		if d := c.CallTimeout(); d > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
	}
	ch := make(chan reply, 1)
	c.mu.Lock()
	if c.closed {
		readErr := c.readErr
		c.mu.Unlock()
		if readErr != nil {
			return &TransportError{Op: "call", Err: fmt.Errorf("connection failed: %w", readErr)}
		}
		return &TransportError{Op: "call", Err: fmt.Errorf("client is closed")}
	}
	c.serial++
	serial := c.serial
	c.pending[serial] = ch
	c.mu.Unlock()

	h := Header{
		Program:   c.program,
		Version:   ProtocolVersion,
		Procedure: procedure,
		Type:      uint32(TypeCall),
		Serial:    serial,
	}
	if err := c.conn.WriteMessage(h, payload); err != nil {
		c.mu.Lock()
		delete(c.pending, serial)
		c.mu.Unlock()
		return &TransportError{Op: "send", Err: fmt.Errorf("send proc %d: %w", procedure, err)}
	}

	var r reply
	var ok bool
	select {
	case r, ok = <-ch:
	case <-ctx.Done():
		c.mu.Lock()
		_, pending := c.pending[serial]
		delete(c.pending, serial)
		c.mu.Unlock()
		if !pending {
			// Reply raced the deadline into the channel; use it.
			select {
			case r, ok = <-ch:
			default:
				ok = false
			}
			if ok {
				break
			}
		}
		callsDeadlined.Inc()
		return &TransportError{Op: "deadline", Err: fmt.Errorf("proc %d abandoned: %w", procedure, ctx.Err())}
	}
	if !ok {
		c.mu.Lock()
		readErr := c.readErr
		c.mu.Unlock()
		return &TransportError{Op: "recv", Err: fmt.Errorf("connection lost awaiting proc %d: %v", procedure, readErr)}
	}
	if r.status == StatusError {
		var ep ErrorPayload
		if err := Unmarshal(r.payload, &ep); err != nil {
			return fmt.Errorf("rpc: proc %d failed with undecodable error: %v", procedure, err)
		}
		return &RemoteError{Code: ep.Code, Message: ep.Message}
	}
	if ret != nil {
		if err := Unmarshal(r.payload, ret); err != nil {
			return fmt.Errorf("rpc: unmarshal reply for proc %d: %w", procedure, err)
		}
	}
	return nil
}

// RemoteError is a server-reported failure with its transported code.
type RemoteError struct {
	Code    uint32
	Message string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote error %d: %s", e.Code, e.Message)
}

// TransportError is a connection-level failure: the peer could not be
// reached, the send failed, or the connection died before the reply
// arrived. It is distinct from RemoteError (the server processed the
// call and reported a failure), so callers managing many hosts can tell
// "this daemon is gone" apart from "this operation is invalid" and
// retry elsewhere.
type TransportError struct {
	Op  string // "call", "send" or "recv"
	Err error
}

func (e *TransportError) Error() string { return fmt.Sprintf("rpc: %v", e.Err) }

func (e *TransportError) Unwrap() error { return e.Err }
