// Package rpc implements the daemon wire protocol substrate: XDR
// serialization (an RFC 4506 subset), length-prefixed message framing
// with program/version/procedure headers, and the client call machinery
// with serial matching and asynchronous event delivery. The remote driver
// and the daemon build on it.
package rpc

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"unsafe"
)

// Maximum sizes, enforced on both encode and decode so a malicious or
// corrupt peer cannot make the other side allocate unboundedly.
const (
	MaxStringLen = 4 * 1024 * 1024
	MaxArrayLen  = 65536
)

// Marshal encodes v (a struct, pointer to struct, or basic value) into
// XDR bytes. Supported kinds: bool, int32, uint32, int64, uint64, int,
// uint, float64, string, []byte, slices of supported kinds, and nested
// structs. int/uint are transmitted as 64-bit. Unexported fields are
// skipped.
//
// Struct and pointer-to-struct values run on a compiled codec plan (see
// xdr_plan.go): the first Marshal of a type pays for plan compilation,
// every later call executes flat field ops with no per-field reflection
// and exactly one allocation (the output buffer, sized by a pre-pass).
func Marshal(v interface{}) ([]byte, error) {
	return AppendMarshal(nil, v)
}

// AppendMarshal encodes v like Marshal but appends to buf, so callers
// holding a reusable buffer encode with zero allocations in the steady
// state. The appended slice is returned (buf's array is reused when its
// capacity suffices).
func AppendMarshal(buf []byte, v interface{}) ([]byte, error) {
	if v != nil {
		t := reflect.TypeOf(v)
		switch t.Kind() {
		case reflect.Ptr:
			if t.Elem().Kind() == reflect.Struct {
				if p := planFor(t.Elem()); p != nil {
					rv := reflect.ValueOf(v)
					if rv.IsNil() {
						return nil, fmt.Errorf("xdr: cannot encode nil pointer")
					}
					return appendPlanned(buf, p, rv.UnsafePointer())
				}
			}
		case reflect.Struct:
			if p := planFor(t); p != nil {
				// A bare struct value inside an interface is not
				// addressable; copy it once to get a stable base pointer.
				rv := reflect.New(t)
				rv.Elem().Set(reflect.ValueOf(v))
				return appendPlanned(buf, p, rv.UnsafePointer())
			}
		}
	}
	// Reflective fallback: non-struct values and plan-rejected shapes.
	e := &encoder{buf: buf}
	if err := e.encode(reflect.ValueOf(v)); err != nil {
		return nil, err
	}
	return e.buf, nil
}

// appendPlanned runs the encode ops. A buffer without spare capacity is
// sized exactly by a pre-pass so a bare Marshal allocates once; a reused
// buffer (frame pool, reply pool) skips the sizing walk and relies on
// its capacity, growing geometrically only until the pool warms up.
func appendPlanned(buf []byte, p *codecPlan, base unsafe.Pointer) ([]byte, error) {
	if cap(buf) == len(buf) {
		need := planSize(p.ops, base)
		nb := make([]byte, len(buf), len(buf)+need)
		copy(nb, buf)
		buf = nb
	}
	return appendPlan(buf, p.ops, base)
}

// MarshalReflect is the original reflective encoder, retained as the
// semantic reference: differential tests and the benchreport T2b
// ablation compare the compiled plans against it, and it remains the
// fallback for shapes plans cannot express.
func MarshalReflect(v interface{}) ([]byte, error) {
	e := &encoder{}
	if err := e.encode(reflect.ValueOf(v)); err != nil {
		return nil, err
	}
	return e.buf, nil
}

type encoder struct {
	buf []byte
}

func (e *encoder) u32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

func (e *encoder) u64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

func (e *encoder) bytes(b []byte) error {
	if len(b) > MaxStringLen {
		return fmt.Errorf("xdr: byte string of %d exceeds limit", len(b))
	}
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
	// Pad to 4-byte boundary.
	for pad := (4 - len(b)%4) % 4; pad > 0; pad-- {
		e.buf = append(e.buf, 0)
	}
	return nil
}

func (e *encoder) encode(v reflect.Value) error {
	switch v.Kind() {
	case reflect.Ptr:
		if v.IsNil() {
			return fmt.Errorf("xdr: cannot encode nil pointer")
		}
		return e.encode(v.Elem())
	case reflect.Bool:
		if v.Bool() {
			e.u32(1)
		} else {
			e.u32(0)
		}
	case reflect.Int32:
		e.u32(uint32(int32(v.Int())))
	case reflect.Uint32:
		e.u32(uint32(v.Uint()))
	case reflect.Int64, reflect.Int:
		e.u64(uint64(v.Int()))
	case reflect.Uint64, reflect.Uint:
		e.u64(v.Uint())
	case reflect.Float64:
		e.u64(math.Float64bits(v.Float()))
	case reflect.String:
		return e.bytes([]byte(v.String()))
	case reflect.Slice:
		if v.Type().Elem().Kind() == reflect.Uint8 {
			return e.bytes(v.Bytes())
		}
		if v.Len() > MaxArrayLen {
			return fmt.Errorf("xdr: array of %d exceeds limit", v.Len())
		}
		e.u32(uint32(v.Len()))
		for i := 0; i < v.Len(); i++ {
			if err := e.encode(v.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			if !t.Field(i).IsExported() {
				continue
			}
			if err := e.encode(v.Field(i)); err != nil {
				return fmt.Errorf("%s.%s: %w", t.Name(), t.Field(i).Name, err)
			}
		}
	default:
		return fmt.Errorf("xdr: unsupported kind %s", v.Kind())
	}
	return nil
}

// Unmarshal decodes XDR bytes into v, which must be a non-nil pointer.
// It errors on truncated input and on trailing bytes. Struct targets
// decode through the same compiled plans as Marshal.
func Unmarshal(data []byte, v interface{}) error {
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Ptr || rv.IsNil() {
		return fmt.Errorf("xdr: Unmarshal target must be a non-nil pointer")
	}
	if t := rv.Type().Elem(); t.Kind() == reflect.Struct {
		if p := planFor(t); p != nil {
			var a byteArena
			pos, err := decodePlan(data, 0, p.ops, rv.UnsafePointer(), &a)
			if err != nil {
				return err
			}
			if pos != len(data) {
				return fmt.Errorf("xdr: %d trailing bytes", len(data)-pos)
			}
			return nil
		}
	}
	return UnmarshalReflect(data, v)
}

// UnmarshalReflect is the original reflective decoder, kept as the
// reference implementation (see MarshalReflect) and the fallback for
// non-struct targets and plan-rejected types.
func UnmarshalReflect(data []byte, v interface{}) error {
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Ptr || rv.IsNil() {
		return fmt.Errorf("xdr: Unmarshal target must be a non-nil pointer")
	}
	d := &decoder{buf: data}
	if err := d.decode(rv.Elem()); err != nil {
		return err
	}
	if d.pos != len(d.buf) {
		return fmt.Errorf("xdr: %d trailing bytes", len(d.buf)-d.pos)
	}
	return nil
}

type decoder struct {
	buf []byte
	pos int
}

func (d *decoder) u32() (uint32, error) {
	if d.pos+4 > len(d.buf) {
		return 0, fmt.Errorf("xdr: truncated input at %d", d.pos)
	}
	v := binary.BigEndian.Uint32(d.buf[d.pos:])
	d.pos += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if d.pos+8 > len(d.buf) {
		return 0, fmt.Errorf("xdr: truncated input at %d", d.pos)
	}
	v := binary.BigEndian.Uint64(d.buf[d.pos:])
	d.pos += 8
	return v, nil
}

func (d *decoder) bytes() ([]byte, error) {
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	if n > MaxStringLen {
		return nil, fmt.Errorf("xdr: byte string of %d exceeds limit", n)
	}
	padded := int(n) + (4-int(n)%4)%4
	if d.pos+padded > len(d.buf) {
		return nil, fmt.Errorf("xdr: truncated byte string at %d", d.pos)
	}
	out := make([]byte, n)
	copy(out, d.buf[d.pos:d.pos+int(n)])
	d.pos += padded
	return out, nil
}

func (d *decoder) decode(v reflect.Value) error {
	switch v.Kind() {
	case reflect.Bool:
		u, err := d.u32()
		if err != nil {
			return err
		}
		if u > 1 {
			return fmt.Errorf("xdr: bool value %d", u)
		}
		v.SetBool(u == 1)
	case reflect.Int32:
		u, err := d.u32()
		if err != nil {
			return err
		}
		v.SetInt(int64(int32(u)))
	case reflect.Uint32:
		u, err := d.u32()
		if err != nil {
			return err
		}
		v.SetUint(uint64(u))
	case reflect.Int64, reflect.Int:
		u, err := d.u64()
		if err != nil {
			return err
		}
		v.SetInt(int64(u))
	case reflect.Uint64, reflect.Uint:
		u, err := d.u64()
		if err != nil {
			return err
		}
		v.SetUint(u)
	case reflect.Float64:
		u, err := d.u64()
		if err != nil {
			return err
		}
		v.SetFloat(math.Float64frombits(u))
	case reflect.String:
		b, err := d.bytes()
		if err != nil {
			return err
		}
		v.SetString(string(b))
	case reflect.Slice:
		if v.Type().Elem().Kind() == reflect.Uint8 {
			b, err := d.bytes()
			if err != nil {
				return err
			}
			v.SetBytes(b)
			return nil
		}
		n, err := d.u32()
		if err != nil {
			return err
		}
		if n > MaxArrayLen {
			return fmt.Errorf("xdr: array of %d exceeds limit", n)
		}
		s := reflect.MakeSlice(v.Type(), int(n), int(n))
		for i := 0; i < int(n); i++ {
			if err := d.decode(s.Index(i)); err != nil {
				return err
			}
		}
		v.Set(s)
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			if !t.Field(i).IsExported() {
				continue
			}
			if err := d.decode(v.Field(i)); err != nil {
				return fmt.Errorf("%s.%s: %w", t.Name(), t.Field(i).Name, err)
			}
		}
	default:
		return fmt.Errorf("xdr: unsupported kind %s", v.Kind())
	}
	return nil
}
