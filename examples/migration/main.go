// Migration: live-migrate domains between two hosts under different
// workload intensities, showing how dirty-page rate and link bandwidth
// drive convergence, total time and downtime — the
// reliability/availability use case of the management layer.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/drivers/qemu"
	"repro/internal/logging"
	"repro/internal/migrate"
	"repro/internal/uri"
)

func newHost() *core.Connect {
	u := &uri.URI{Driver: "qsim", Path: "/system"}
	drv, err := qemu.New(u, logging.NewQuiet(logging.Error))
	if err != nil {
		log.Fatal(err)
	}
	return core.OpenWith(u, drv)
}

func main() {
	src := newHost()
	dst := newHost()
	defer src.Close()
	defer dst.Close()

	scenarios := []struct {
		name      string
		memMiB    int
		dirtyRate uint64 // pages/s
		bwMBps    uint64
	}{
		{"idle-small", 1024, 200, 1000},
		{"busy-small", 1024, 50_000, 1000},
		{"idle-large", 8192, 200, 1000},
		{"busy-large", 8192, 200_000, 1000},
		{"busy-slowlink", 4096, 100_000, 100},
	}

	fmt.Printf("%-15s %-9s %-12s %-7s %-11s %-12s %-10s %s\n",
		"SCENARIO", "MEM MiB", "DIRTY pg/s", "BW MB/s", "ITERATIONS", "TOTAL ms", "DOWN ms", "CONVERGED")
	for i, sc := range scenarios {
		xml := fmt.Sprintf(`
<domain type='qsim'>
  <name>mig%d</name>
  <description>cpu_util=0.5 dirty_pages_sec=%d</description>
  <memory unit='MiB'>%d</memory>
  <vcpu>2</vcpu>
  <os><type arch='x86_64'>hvm</type></os>
</domain>`, i, sc.dirtyRate, sc.memMiB)
		dom, err := src.CreateDomainXML(xml)
		if err != nil {
			log.Fatal(err)
		}
		res, err := migrate.Migrate(dom, dst, core.MigrateOptions{
			BandwidthMBps:  sc.bwMBps,
			MaxDowntimeMs:  300,
			MaxIterations:  20,
			UndefineSource: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s %-9d %-12d %-7d %-11d %-12.1f %-10.1f %v\n",
			sc.name, sc.memMiB, sc.dirtyRate, sc.bwMBps,
			res.Iterations, res.TotalTimeMs(), res.DowntimeMs(), res.Converged)
	}

	// Everything landed on the destination.
	doms, err := dst.ListAllDomains(core.ListActive)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDomains now running on destination host: %d\n", len(doms))
}
