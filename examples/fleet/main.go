// Fleet: the multi-host management story, end to end. Three govirtd
// daemons come up in-process on unix sockets — three "hosts", each with
// its own simulated hypervisor. A fleet.Registry dials all three
// through the uniform API, a spread-policy scheduler places twelve
// domains across them, and a rebalancing pass drains one host by live
// migration with zero lost domains — everything driven client-side
// through the same stable surface a single-host application uses.
//
// The program exits non-zero if placement is not balanced or any domain
// is lost during the drain, so CI can run it as a smoke test.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/daemon"
	"repro/internal/drivers/remote"
	drvtest "repro/internal/drivers/test"
	"repro/internal/fleet"
	"repro/internal/logging"
	"repro/internal/telemetry"
)

func main() {
	nHosts := flag.Int("hosts", 3, "number of in-process daemons")
	nDomains := flag.Int("domains", 12, "number of domains to place")
	drain := flag.Bool("drain", true, "drain the first host after placement")
	flag.Parse()

	logger := logging.NewQuiet(logging.Error)
	drvtest.Register(logger)
	remote.Register()

	dir, err := os.MkdirTemp("", "fleet")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// One daemon per "host". The /empty path gives each an empty
	// environment (the /default path would pre-define a canned domain on
	// every host and the names would clash during migration).
	var uris []string
	for i := 0; i < *nHosts; i++ {
		d := daemon.New(logger)
		srv, err := d.AddServer("govirtd", 2, 8, 2, daemon.ClientLimits{})
		if err != nil {
			log.Fatal(err)
		}
		srv.AddProgram(daemon.NewRemoteProgram(srv))
		sock := filepath.Join(dir, fmt.Sprintf("node%d.sock", i))
		if err := srv.ListenUnix(sock, daemon.ServiceConfig{}); err != nil {
			log.Fatal(err)
		}
		defer d.Shutdown()
		uris = append(uris, "test+unix:///empty?socket="+strings.ReplaceAll(sock, "/", "%2F"))
	}

	reg, err := fleet.New(fleet.Config{
		Hosts:        uris,
		PollInterval: 500 * time.Millisecond,
		Policy:       fleet.Spread(),
		Log:          logger,
	})
	if err != nil {
		log.Fatal(err)
	}
	reg.Start()
	defer reg.Close()
	if up := reg.WaitSettled(5 * time.Second); up != *nHosts {
		log.Fatalf("only %d/%d hosts came up", up, *nHosts)
	}
	fmt.Printf("fleet up: %d hosts\n", *nHosts)

	// Phase 1: spread-place the domains. Every placement goes through
	// Schedule: parse the definition, rank the hosts by projected load,
	// define+start on the winner.
	for i := 0; i < *nDomains; i++ {
		p, err := reg.Schedule(domainXML(fmt.Sprintf("vm%02d", i)))
		if err != nil {
			log.Fatalf("schedule vm%02d: %v", i, err)
		}
		fmt.Printf("  vm%02d -> %s\n", i, p.Host)
	}

	counts := activeCounts(reg)
	fmt.Printf("\nplacement by host: %v (skew %.3f)\n", counts, fleet.Skew(reg.Inventory()))
	min, max := minMax(counts)
	if max-min > 1 {
		log.Fatalf("spread policy placed unevenly: %v", counts)
	}
	if total(counts) != *nDomains {
		log.Fatalf("expected %d active domains, found %d", *nDomains, total(counts))
	}

	if !*drain {
		return
	}

	// Phase 2: drain the first host for maintenance. The rebalancer
	// live-migrates every domain off it; each migration runs the full
	// iterative pre-copy against the domain's workload model.
	drainHost := reg.Hosts()[0]
	fmt.Printf("\ndraining %s...\n", drainHost)
	res, err := reg.Rebalance(context.Background(), fleet.RebalanceOptions{
		Drain:       drainHost,
		Concurrency: 2,
		OnMigration: func(rec fleet.MigrationRecord) {
			if rec.Err != nil {
				log.Fatalf("migration %s %s->%s: %v", rec.Domain, rec.From, rec.To, rec.Err)
			}
			fmt.Printf("  %s: %s -> %s in %.1f ms (downtime %.2f ms, %d rounds)\n",
				rec.Domain, rec.From, rec.To,
				rec.Result.TotalTimeMs(), rec.Result.DowntimeMs(), rec.Result.Iterations)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Converged {
		log.Fatalf("drain did not converge: %+v", res)
	}

	counts = activeCounts(reg)
	fmt.Printf("\nafter drain: %v\n", counts)
	if counts[drainHost] != 0 {
		log.Fatalf("drain host still carries %d domains", counts[drainHost])
	}
	if total(counts) != *nDomains {
		log.Fatalf("domains lost during drain: expected %d, found %d", *nDomains, total(counts))
	}
	fmt.Printf("drained %s: %d migrations, zero lost domains\n", drainHost, len(res.Migrations))

	// The whole run is visible in the shared telemetry registry — the
	// same counters a production fleet would export over /metrics.
	snap := telemetry.Default.Snapshot()
	fmt.Println("\nfleet telemetry:")
	for _, c := range snap.Counters {
		if strings.HasPrefix(c.Name, "fleet_") {
			fmt.Printf("  %-36s %d\n", c.Name, c.Value)
		}
	}
}

// domainXML builds a definition with workload hints: enough memory to
// make placement interesting, a dirty-page rate the migration engine
// can converge on.
func domainXML(name string) string {
	return fmt.Sprintf(`
<domain type='test'>
  <name>%s</name>
  <description>cpu_util=0.3 dirty_pages_sec=1000</description>
  <memory unit='MiB'>8192</memory>
  <vcpu>4</vcpu>
  <os><type arch='x86_64'>hvm</type></os>
</domain>`, name)
}

func activeCounts(reg *fleet.Registry) map[string]int {
	reg.RefreshNow()
	counts := map[string]int{}
	for _, inv := range reg.Inventory() {
		counts[inv.Host] = inv.ActiveDomains()
	}
	return counts
}

func minMax(counts map[string]int) (min, max int) {
	first := true
	for _, n := range counts {
		if first || n < min {
			min = n
		}
		if first || n > max {
			max = n
		}
		first = false
	}
	return min, max
}

func total(counts map[string]int) int {
	sum := 0
	for _, n := range counts {
		sum += n
	}
	return sum
}
