// Monitoring: non-intrusive fleet monitoring across heterogeneous
// hypervisors — the paper's motivating scenario. One monitoring loop
// watches a mixed fleet (full-virt qsim guests, paravirt xsim guests,
// csim containers) through the identical API, with lifecycle events
// pushed by the drivers and statistics polled hypervisor-side. No agent
// runs in any guest.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/drivers/lxc"
	"repro/internal/drivers/qemu"
	"repro/internal/drivers/xen"
	"repro/internal/events"
	"repro/internal/logging"
	"repro/internal/uri"
)

// host is one hypervisor under management.
type host struct {
	label string
	conn  *core.Connect
}

func main() {
	quiet := logging.NewQuiet(logging.Error)
	u := &uri.URI{Path: "/system"}

	// Three hosts running three different virtualization technologies.
	qdrv, err := qemu.New(u, quiet)
	if err != nil {
		log.Fatal(err)
	}
	xdrv, err := xen.New(u, quiet)
	if err != nil {
		log.Fatal(err)
	}
	cdrv, err := lxc.New(u, quiet)
	if err != nil {
		log.Fatal(err)
	}
	fleet := []host{
		{"kvm-host (qsim)", core.OpenWith(u, qdrv)},
		{"xen-host (xsim)", core.OpenWith(u, xdrv)},
		{"ct-host  (csim)", core.OpenWith(u, cdrv)},
	}

	// Subscribe to lifecycle events on every host before starting
	// anything, so the monitor sees the whole story.
	collector := events.NewCollector()
	for _, h := range fleet {
		if _, err := h.conn.SubscribeEvents("", nil, collector.Callback()); err != nil {
			log.Fatal(err)
		}
	}

	// Provision an identical workload on each host through the same API.
	for _, h := range fleet {
		typ, _ := h.conn.Type()
		for i := 0; i < 3; i++ {
			xml := fmt.Sprintf(`
<domain type='%s'>
  <name>svc%d</name>
  <description>cpu_util=0.%d5 dirty_pages_sec=%d block_iops=%d net_pps=%d</description>
  <memory unit='MiB'>512</memory>
  <vcpu>2</vcpu>
  <os><type arch='x86_64'>hvm</type></os>
</domain>`, typ, i, i+2, (i+1)*500, (i+1)*100, (i+1)*400)
			dom, err := h.conn.DefineDomain(xml)
			if err != nil {
				log.Fatal(err)
			}
			if err := dom.Create(); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Let the simulated guests run for 10 modelled seconds.
	for _, h := range fleet {
		ma := h.conn.Driver().(core.MachineAccess)
		doms, _ := h.conn.ListAllDomains(core.ListActive)
		for _, d := range doms {
			m, err := ma.Machine(d.Name())
			if err != nil {
				log.Fatal(err)
			}
			m.RunFor(10_000_000_000)
		}
	}

	// One monitoring pass over the whole heterogeneous fleet.
	fmt.Printf("%-16s %-8s %-9s %-10s %-12s %-12s %s\n",
		"HOST", "DOMAIN", "STATE", "CPU(s)", "MEM KiB", "BLK REQS", "NET PKTS")
	for _, h := range fleet {
		doms, err := h.conn.ListAllDomains(core.ListActive)
		if err != nil {
			log.Fatal(err)
		}
		sort.Slice(doms, func(i, j int) bool { return doms[i].Name() < doms[j].Name() })
		for _, d := range doms {
			st, err := d.Stats()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-16s %-8s %-9s %-10.2f %-12d %-12d %d\n",
				h.label, d.Name(), st.State,
				float64(st.CPUTimeNs)/1e9, st.MemKiB,
				st.RdReqs+st.WrReqs, st.RxPkts+st.TxPkts)
		}
	}

	// Inject a failure on one host and show the event stream caught it.
	victimConn := fleet[0].conn
	ma := victimConn.Driver().(core.MachineAccess)
	m, err := ma.Machine("svc1")
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Crash(); err != nil {
		log.Fatal(err)
	}
	// Drivers notice crashes on the next state observation and push the
	// crash event to every subscriber.
	dom, _ := victimConn.LookupDomain("svc1")
	st, _ := dom.State()
	fmt.Printf("\nInjected failure: svc1 on %s is now %q\n", fleet[0].label, st)

	fmt.Printf("\nLifecycle events observed by the monitor (%d total):\n", collector.Len())
	byType := map[events.Type]int{}
	for _, ev := range collector.Events() {
		byType[ev.Type]++
	}
	for _, t := range []events.Type{events.EventDefined, events.EventStarted, events.EventCrashed} {
		fmt.Printf("  %-10s %d\n", t, byType[t])
	}
}
