// Quickstart: open a connection, define a domain from XML, run it
// through its lifecycle and read its stats — the five-minute tour of the
// uniform management API. Uses the in-process test driver so it runs
// anywhere with no daemon.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/drivers/lxc"
	"repro/internal/drivers/qemu"
	drvtest "repro/internal/drivers/test"
	"repro/internal/drivers/xen"
	"repro/internal/logging"
)

const domainXML = `
<domain type='test'>
  <name>quickstart</name>
  <description>cpu_util=0.6 dirty_pages_sec=2000 block_iops=300 net_pps=1500</description>
  <memory unit='MiB'>1024</memory>
  <vcpu>2</vcpu>
  <os><type arch='x86_64'>hvm</type></os>
  <devices>
    <disk type='file' device='disk'>
      <source file='/var/lib/test/images/quickstart.img'/>
      <target dev='vda' bus='virtio'/>
    </disk>
    <interface type='network'>
      <mac address='52:54:00:01:02:03'/>
      <source network='default'/>
    </interface>
  </devices>
</domain>`

func main() {
	// Register the drivers this binary ships with; a management
	// application does this once at start-up.
	quiet := logging.NewQuiet(logging.Error)
	drvtest.Register(quiet)
	qemu.Register(quiet)
	xen.Register(quiet)
	lxc.Register(quiet)

	// The connection URI picks the driver; "test:///default" gives a
	// canned environment with a running domain, a network and a pool.
	conn, err := core.Open("test:///default")
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	hostname, _ := conn.Hostname()
	version, _ := conn.Version()
	fmt.Printf("Connected to %s (%s)\n\n", hostname, version)

	// Define and start a new domain.
	dom, err := conn.DefineDomain(domainXML)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Defined %s (UUID %s)\n", dom.Name(), dom.UUID())
	if err := dom.Create(); err != nil {
		log.Fatal(err)
	}

	// Walk the lifecycle.
	for _, step := range []struct {
		name string
		op   func() error
	}{
		{"suspend", dom.Suspend},
		{"resume", dom.Resume},
		{"reboot", dom.Reboot},
	} {
		if err := step.op(); err != nil {
			log.Fatal(err)
		}
		st, _ := dom.State()
		fmt.Printf("  after %-8s state=%s\n", step.name, st)
	}

	// Non-intrusive monitoring: all numbers come from the hypervisor
	// side, nothing runs inside the guest.
	stats, err := dom.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nStats for %s:\n", dom.Name())
	fmt.Printf("  cpu time:   %.2fs\n", float64(stats.CPUTimeNs)/1e9)
	fmt.Printf("  memory:     %d/%d KiB\n", stats.MemKiB, stats.MaxMemKiB)
	fmt.Printf("  vcpus:      %d\n", stats.VCPUs)

	// Every defined domain, active or not.
	doms, err := conn.ListAllDomains(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAll domains:")
	for _, d := range doms {
		st, _ := d.State()
		fmt.Printf("  %-12s %s\n", d.Name(), st)
	}

	// Clean up.
	if err := dom.Destroy(); err != nil {
		log.Fatal(err)
	}
	if err := dom.Undefine(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nquickstart domain destroyed and undefined")
}
