// Loadbalance: the admin interface's flagship use case. A daemon serves
// a burst of clients with a deliberately small workerpool; the operator
// watches the job queue build up through the admin API and widens the
// pool at runtime — no restart, no dropped connections — then watches
// the queue drain. Ends by bumping the client connection limit after
// observing rejected connections, the exact scenario that motivated the
// administration interface.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/admin"
	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/drivers/remote"
	drvtest "repro/internal/drivers/test"
	"repro/internal/logging"
	"repro/internal/typedparams"
)

func main() {
	logger := logging.NewQuiet(logging.Error)
	drvtest.Register(logger)
	remote.Register()

	dir, err := os.MkdirTemp("", "loadbalance")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Daemon with a deliberately tiny pool and low client limit.
	d := daemon.New(logger)
	mgmt, err := d.AddServer("govirtd", 1, 2, 1, daemon.ClientLimits{MaxClients: 6})
	if err != nil {
		log.Fatal(err)
	}
	mgmt.AddProgram(daemon.NewRemoteProgram(mgmt))
	mgmtSock := filepath.Join(dir, "govirtd.sock")
	if err := mgmt.ListenUnix(mgmtSock, daemon.ServiceConfig{}); err != nil {
		log.Fatal(err)
	}
	adm, err := d.AddServer("admin", 1, 2, 1, daemon.ClientLimits{MaxClients: 4})
	if err != nil {
		log.Fatal(err)
	}
	adm.AddProgram(admin.NewProgram(d))
	admSock := filepath.Join(dir, "admin.sock")
	if err := adm.ListenUnix(admSock, daemon.ServiceConfig{}); err != nil {
		log.Fatal(err)
	}
	defer d.Shutdown()

	admConn, err := admin.Open(admSock)
	if err != nil {
		log.Fatal(err)
	}
	defer admConn.Close()

	mgmtURI := "test+unix:///default?socket=" + strings.ReplaceAll(mgmtSock, "/", "%2F")

	show := func(when string) {
		params, err := admConn.ThreadpoolParams("govirtd")
		if err != nil {
			log.Fatal(err)
		}
		max, _ := params.GetUInt("maxWorkers")
		n, _ := params.GetUInt("nWorkers")
		free, _ := params.GetUInt("freeWorkers")
		depth, _ := params.GetUInt("jobQueueDepth")
		fmt.Printf("%-28s maxWorkers=%-3d nWorkers=%-3d free=%-3d queueDepth=%d\n",
			when, max, n, free, depth)
	}

	// Phase 1: burst of clients against the tiny pool.
	show("before burst:")
	var wg sync.WaitGroup
	runBurst := func() {
		for i := 0; i < 6; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				conn, err := core.Open(mgmtURI)
				if err != nil {
					return
				}
				defer conn.Close()
				for j := 0; j < 300; j++ {
					if _, err := conn.Hostname(); err != nil {
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	t0 := time.Now()
	runBurst()
	smallPool := time.Since(t0)
	show("after burst (2 workers):")

	// Phase 2: the operator widens the pool at runtime.
	set := typedparams.NewList()
	set.AddUInt("maxWorkers", 16) //nolint:errcheck
	set.AddUInt("minWorkers", 8)  //nolint:errcheck
	if err := admConn.SetThreadpoolParams("govirtd", set); err != nil {
		log.Fatal(err)
	}
	show("after srv-threadpool-set:")

	t0 = time.Now()
	runBurst()
	bigPool := time.Since(t0)
	show("after burst (16 workers):")

	fmt.Printf("\nburst wall time: %-8v with 2 workers max\n", smallPool.Round(time.Millisecond))
	fmt.Printf("burst wall time: %-8v with 16 workers max\n", bigPool.Round(time.Millisecond))

	// Phase 3: connection-limit management. Overload the limit, observe
	// rejections, raise the limit through the admin API.
	var conns []*core.Connect
	rejected := 0
	for i := 0; i < 10; i++ {
		c, err := core.Open(mgmtURI)
		if err != nil {
			rejected++
			continue
		}
		conns = append(conns, c)
	}
	limits, _ := admConn.ClientLimits("govirtd")
	cur, _ := limits.GetUInt("nclients")
	max, _ := limits.GetUInt("nclients_max")
	fmt.Printf("\nconnections: %d accepted, %d rejected (nclients=%d, nclients_max=%d)\n",
		len(conns), rejected, cur, max)

	raise := typedparams.NewList()
	raise.AddUInt("nclients_max", 64) //nolint:errcheck
	if err := admConn.SetClientLimits("govirtd", raise); err != nil {
		log.Fatal(err)
	}
	extra, err := core.Open(mgmtURI)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after srv-clients-set --max-clients 64: new connection accepted")
	extra.Close()
	for _, c := range conns {
		c.Close()
	}

	fmt.Println("\nThis tuned one daemon under load. For balancing load across" +
		" several daemons\n— placement policies and live-migration rebalancing —" +
		" see examples/fleet.")
}
