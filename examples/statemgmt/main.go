// Statemgmt: the day-two operations workflow — snapshot before a risky
// change, hot-plug a disk and a NIC while the guest runs, clone the
// tested configuration for a second instance, roll back when the
// "upgrade" goes wrong, and carry state across a host restart with
// managed save.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/drivers/qemu"
	"repro/internal/logging"
	"repro/internal/uri"
)

const appXML = `
<domain type='qsim'>
  <name>app01</name>
  <title>Application server</title>
  <description>cpu_util=0.5 dirty_pages_sec=1000</description>
  <memory unit='MiB'>2048</memory>
  <currentMemory unit='MiB'>1024</currentMemory>
  <vcpu>2</vcpu>
  <os><type arch='x86_64'>hvm</type></os>
  <devices>
    <disk type='file' device='disk'>
      <source file='/images/app01.qcow2'/>
      <target dev='vda' bus='virtio'/>
    </disk>
    <interface type='user'>
      <mac address='52:54:00:ap:p0:01'/>
    </interface>
  </devices>
</domain>`

func main() {
	drv, err := qemu.New(&uri.URI{Driver: "qsim", Path: "/system"}, logging.NewQuiet(logging.Error))
	if err != nil {
		log.Fatal(err)
	}
	conn := core.OpenWith(&uri.URI{Driver: "qsim"}, drv)
	defer conn.Close()

	fixed := fixMAC(appXML)
	dom, err := conn.CreateDomainXML(fixed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("app01 defined and running")

	// 1. Snapshot before the risky change.
	snap, err := dom.CreateSnapshot(`<domainsnapshot><name>pre-upgrade</name><description>known good</description></domainsnapshot>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot %q taken while running\n", snap)

	// 2. Hot-plug a scratch disk and an extra NIC for the upgrade.
	if err := dom.AttachDevice(`<disk type='file' device='disk'><source file='/images/scratch.img'/><target dev='vdb' bus='virtio'/></disk>`); err != nil {
		log.Fatal(err)
	}
	if err := dom.AttachDevice(`<interface type='user'><mac address='52:54:00:00:99:01'/></interface>`); err != nil {
		log.Fatal(err)
	}
	fmt.Println("hot-plugged scratch disk vdb and a second NIC")

	// 3. The "upgrade" misbehaves: balloon climbs, then the guest wedges.
	if err := dom.SetMemory(2048 * 1024); err != nil {
		log.Fatal(err)
	}
	fmt.Println("upgrade misbehaving (memory ballooned to max) — rolling back")

	// 4. Roll back to the snapshot: fresh instance, pre-upgrade state.
	if err := dom.RevertSnapshot("pre-upgrade"); err != nil {
		log.Fatal(err)
	}
	st, _ := dom.State()
	info, _ := dom.Info()
	fmt.Printf("reverted: state=%s memory=%d KiB\n", st, info.MemKiB)

	// 5. Clone the known-good definition for a second instance.
	clone, err := core.CloneDomain(conn, "app01", "app02")
	if err != nil {
		log.Fatal(err)
	}
	if err := clone.Create(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cloned to %s (fresh UUID %s, fresh MACs, own disk paths)\n",
		clone.Name(), clone.UUID()[:8])

	// 6. Host maintenance: save both guests' state, "reboot", restore.
	for _, d := range []*core.Domain{dom, clone} {
		if err := d.ManagedSave(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("both guests saved for host maintenance")
	for _, d := range []*core.Domain{dom, clone} {
		if err := d.Create(); err != nil { // restores, does not boot fresh
			log.Fatal(err)
		}
	}
	doms, _ := conn.ListAllDomains(core.ListActive)
	fmt.Printf("after 'reboot': %d guests restored and running\n", len(doms))
}

// fixMAC replaces the intentionally eye-catching placeholder MAC so the
// example XML above stays readable.
func fixMAC(s string) string {
	return strings.Replace(s, "52:54:00:ap:p0:01", "52:54:00:0a:00:01", 1)
}
