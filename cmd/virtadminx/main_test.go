package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/admin"
	"repro/internal/daemon"
	"repro/internal/logging"
)

// startTestDaemon brings up a daemon with an admin server and returns
// the admin socket path.
func startTestDaemon(t *testing.T) string {
	t.Helper()
	d := daemon.New(logging.NewQuiet(logging.Error))
	if _, err := d.AddServer("govirtd", 2, 8, 2, daemon.ClientLimits{MaxClients: 20}); err != nil {
		t.Fatal(err)
	}
	adm, err := d.AddServer("admin", 1, 2, 1, daemon.ClientLimits{MaxClients: 5})
	if err != nil {
		t.Fatal(err)
	}
	adm.AddProgram(admin.NewProgram(d))
	sock := filepath.Join(t.TempDir(), "admin.sock")
	if err := adm.ListenUnix(sock, daemon.ServiceConfig{}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Shutdown)
	return sock
}

func adminCLI(t *testing.T, sock string, args ...string) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	full := append([]string{"-sock", sock}, args...)
	runErr := run(full)
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

func TestHelp(t *testing.T) {
	out, err := adminCLI(t, "/nonexistent", "help")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"srv-list", "srv-threadpool-set", "client-disconnect", "dmn-log-define"} {
		if !strings.Contains(out, want) {
			t.Errorf("help missing %q", want)
		}
	}
}

func TestSrvList(t *testing.T) {
	sock := startTestDaemon(t)
	out, err := adminCLI(t, sock, "srv-list")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "govirtd") || !strings.Contains(out, "admin") {
		t.Fatalf("srv-list:\n%s", out)
	}
}

func TestThreadpoolInfoAndSet(t *testing.T) {
	sock := startTestDaemon(t)
	out, err := adminCLI(t, sock, "srv-threadpool-info", "govirtd")
	if err != nil || !strings.Contains(out, "maxWorkers") {
		t.Fatalf("info: %v\n%s", err, out)
	}
	if _, err := adminCLI(t, sock, "srv-threadpool-set", "govirtd", "--max-workers", "32", "--prio-workers", "4"); err != nil {
		t.Fatal(err)
	}
	out, _ = adminCLI(t, sock, "srv-threadpool-info", "govirtd")
	if !strings.Contains(out, ": 32") {
		t.Fatalf("set not applied:\n%s", out)
	}
	// Error paths.
	if _, err := adminCLI(t, sock, "srv-threadpool-set", "govirtd", "--warp", "9"); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if _, err := adminCLI(t, sock, "srv-threadpool-set", "govirtd", "--max-workers"); err == nil {
		t.Fatal("flag without value accepted")
	}
	if _, err := adminCLI(t, sock, "srv-threadpool-set", "govirtd", "--max-workers", "x"); err == nil {
		t.Fatal("non-numeric value accepted")
	}
	if _, err := adminCLI(t, sock, "srv-threadpool-set", "govirtd"); err == nil {
		t.Fatal("empty set accepted")
	}
}

func TestClientsInfoAndSet(t *testing.T) {
	sock := startTestDaemon(t)
	out, err := adminCLI(t, sock, "srv-clients-info", "govirtd")
	if err != nil || !strings.Contains(out, "nclients_max") {
		t.Fatalf("info: %v\n%s", err, out)
	}
	if _, err := adminCLI(t, sock, "srv-clients-set", "govirtd", "--max-clients", "99"); err != nil {
		t.Fatal(err)
	}
	out, _ = adminCLI(t, sock, "srv-clients-info", "govirtd")
	if !strings.Contains(out, ": 99") {
		t.Fatalf("set not applied:\n%s", out)
	}
}

func TestClientListAndInfo(t *testing.T) {
	sock := startTestDaemon(t)
	// Our own admin connection appears in the admin server's client list.
	out, err := adminCLI(t, sock, "client-list", "admin")
	if err != nil || !strings.Contains(out, "unix") {
		t.Fatalf("client-list: %v\n%s", err, out)
	}
	if _, err := adminCLI(t, sock, "client-info", "admin", "notanumber"); err == nil {
		t.Fatal("bad id accepted")
	}
	if _, err := adminCLI(t, sock, "client-disconnect", "admin", "99999"); err == nil {
		t.Fatal("missing client disconnect accepted")
	}
}

func TestLogCommands(t *testing.T) {
	sock := startTestDaemon(t)
	out, err := adminCLI(t, sock, "dmn-log-info")
	if err != nil || !strings.Contains(out, "Logging level:") {
		t.Fatalf("log-info: %v\n%s", err, out)
	}
	if _, err := adminCLI(t, sock, "dmn-log-define", "--level", "debug", "--filters", "3:rpc"); err != nil {
		t.Fatal(err)
	}
	out, _ = adminCLI(t, sock, "dmn-log-info")
	if !strings.Contains(out, "debug") || !strings.Contains(out, "3:rpc") {
		t.Fatalf("log-define not applied:\n%s", out)
	}
	if _, err := adminCLI(t, sock, "dmn-log-define"); err == nil {
		t.Fatal("empty define accepted")
	}
	if _, err := adminCLI(t, sock, "dmn-log-define", "--level", "verbose"); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := adminCLI(t, sock, "dmn-log-define", "--mystery", "x"); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestMetricsCommand(t *testing.T) {
	sock := startTestDaemon(t)
	// Generate some dispatch traffic so the table has rows.
	if _, err := adminCLI(t, sock, "srv-list"); err != nil {
		t.Fatal(err)
	}
	out, err := adminCLI(t, sock, "metrics")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Procedure") || !strings.Contains(out, "admin.ConnectOpen") {
		t.Fatalf("metrics:\n%s", out)
	}
	out, err = adminCLI(t, sock, "metrics", "--all")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Counters:", "Gauges:", "Histograms:", "daemon_clients", "daemon_dispatch_seconds"} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics --all missing %q", want)
		}
	}
	if _, err := adminCLI(t, sock, "metrics", "--warp"); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestSlowCallsCommand(t *testing.T) {
	d := daemon.New(logging.NewQuiet(logging.Error))
	adm, err := d.AddServer("admin", 1, 2, 1, daemon.ClientLimits{MaxClients: 5})
	if err != nil {
		t.Fatal(err)
	}
	adm.AddProgram(admin.NewProgram(d))
	sock := filepath.Join(t.TempDir(), "admin.sock")
	if err := adm.ListenUnix(sock, daemon.ServiceConfig{}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Shutdown)
	// With a 1ns threshold every dispatched call lands in the ring.
	d.Tracer().SetThreshold(time.Nanosecond)

	if _, err := adminCLI(t, sock, "srv-list"); err != nil {
		t.Fatal(err)
	}
	out, err := adminCLI(t, sock, "slow-calls")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Calls traced:", "Slow calls:", "Threshold:    1ns", "admin.ServerList"} {
		if !strings.Contains(out, want) {
			t.Errorf("slow-calls missing %q:\n%s", want, out)
		}
	}
}

func TestUnknownCommandAndBadSocket(t *testing.T) {
	sock := startTestDaemon(t)
	if _, err := adminCLI(t, sock, "warp"); err == nil {
		t.Fatal("unknown command accepted")
	}
	if _, err := adminCLI(t, "/does/not/exist.sock", "srv-list"); err == nil {
		t.Fatal("bad socket accepted")
	}
}
