// Command virtadminx is the daemon administration client — the
// virt-admin equivalent. It connects to the daemon's admin server over
// its unix socket and manages workerpools, client limits, connected
// clients and the logging subsystem at runtime.
//
// Usage:
//
//	virtadminx [-sock path] <command> [args...]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/admin"
	"repro/internal/core"
	"repro/internal/drivers/lxc"
	"repro/internal/drivers/qemu"
	"repro/internal/drivers/remote"
	drvtest "repro/internal/drivers/test"
	"repro/internal/drivers/xen"
	"repro/internal/logging"
	"repro/internal/telemetry"
	"repro/internal/typedparams"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run(argv []string) error {
	fs := flag.NewFlagSet("virtadminx", flag.ContinueOnError)
	sock := fs.String("sock", admin.DefaultAdminSocket, "admin unix socket path")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	args := fs.Args()
	if len(args) == 0 || args[0] == "help" {
		printHelp()
		return nil
	}
	// domain-metrics talks to a driver URI, not the admin socket, so it
	// must not require a running daemon.
	if args[0] == "domain-metrics" {
		return needArgs(args, 2, func() error { return domainMetrics(args[1], args[2:]) })
	}
	conn, err := admin.Open(*sock)
	if err != nil {
		return err
	}
	defer conn.Close()

	switch args[0] {
	case "srv-list":
		return srvList(conn)
	case "srv-threadpool-info":
		return needArgs(args, 2, func() error { return threadpoolInfo(conn, args[1]) })
	case "srv-threadpool-set":
		return needArgs(args, 2, func() error { return threadpoolSet(conn, args[1], args[2:]) })
	case "srv-clients-info":
		return needArgs(args, 2, func() error { return clientsInfo(conn, args[1]) })
	case "srv-clients-set":
		return needArgs(args, 2, func() error { return clientsSet(conn, args[1], args[2:]) })
	case "client-list":
		return needArgs(args, 2, func() error { return clientList(conn, args[1]) })
	case "client-info":
		return needArgs(args, 3, func() error { return clientInfo(conn, args[1], args[2]) })
	case "client-disconnect":
		return needArgs(args, 3, func() error { return clientDisconnect(conn, args[1], args[2]) })
	case "dmn-log-info":
		return logInfo(conn)
	case "dmn-log-define":
		return logDefine(conn, args[1:])
	case "metrics":
		return metrics(conn, args[1:])
	case "slow-calls":
		return slowCalls(conn)
	case "qos":
		return needArgs(args, 2, func() error { return qosInfo(conn, args[1]) })
	case "qos-set":
		return needArgs(args, 2, func() error { return qosSet(conn, args[1], args[2:]) })
	default:
		return fmt.Errorf("unknown command %q (try \"help\")", args[0])
	}
}

func needArgs(args []string, n int, fn func() error) error {
	if len(args) < n {
		return fmt.Errorf("command %s needs %d argument(s)", args[0], n-1)
	}
	return fn()
}

func printHelp() {
	fmt.Print(`virtadminx — daemon administration client
usage: virtadminx [-sock path] <command> [args...]

Monitoring commands:
  srv-list                          list servers on the daemon
  srv-threadpool-info <server>      show workerpool parameters
  srv-clients-info <server>         show client limits and counts
  client-list <server>              list connected clients
  client-info <server> <id>         show a client's identity
  dmn-log-info                      show logging level, filters, outputs
  metrics [--all]                   show call counts and dispatch latencies
  slow-calls                        show the recent slow-call ring
  qos <server>                      show admission classes, quotas and rejection counts
  domain-metrics <uri> [--prom]     per-domain stats from one bulk sweep of a driver URI

Management commands:
  srv-threadpool-set <server> [--min-workers N] [--max-workers N] [--prio-workers N]
  srv-clients-set <server> [--max-clients N] [--max-unauth-clients N]
  client-disconnect <server> <id>   force-close a client connection
  dmn-log-define [--level N] [--filters "..."] [--outputs "..."]
  qos-set <server> --class "spec" [--class "spec" ...] [--watermark N]
  qos-set <server> --disable       remove admission control

A --class spec is the qos_classes grammar, e.g.
  "bronze rate_limit_calls_per_s=50 burst=10 max_inflight_calls=4 priority=2 users=eve"
`)
}

func srvList(conn *admin.Connect) error {
	servers, err := conn.ListServers()
	if err != nil {
		return err
	}
	fmt.Printf(" %-4s %s\n ---------------\n", "Id", "Name")
	for i, s := range servers {
		fmt.Printf(" %-4d %s\n", i, s)
	}
	return nil
}

func printParams(l *typedparams.List) {
	for _, p := range l.Params() {
		fmt.Printf("%-24s: %v\n", p.Field, p.Value())
	}
}

func threadpoolInfo(conn *admin.Connect, server string) error {
	params, err := conn.ThreadpoolParams(server)
	if err != nil {
		return err
	}
	printParams(params)
	return nil
}

// parseFlagUInts maps "--flag value" pairs onto typed-parameter fields.
func parseFlagUInts(args []string, mapping map[string]string) (*typedparams.List, error) {
	l := typedparams.NewList()
	for i := 0; i < len(args); i++ {
		field, ok := mapping[args[i]]
		if !ok {
			return nil, fmt.Errorf("unknown flag %q", args[i])
		}
		if i+1 >= len(args) {
			return nil, fmt.Errorf("flag %s needs a value", args[i])
		}
		v, err := strconv.ParseUint(args[i+1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("flag %s: bad value %q", args[i], args[i+1])
		}
		if err := l.AddUInt(field, uint32(v)); err != nil {
			return nil, err
		}
		i++
	}
	if l.Len() == 0 {
		return nil, fmt.Errorf("nothing to set")
	}
	return l, nil
}

func threadpoolSet(conn *admin.Connect, server string, args []string) error {
	params, err := parseFlagUInts(args, map[string]string{
		"--min-workers":  admin.FieldMinWorkers,
		"--max-workers":  admin.FieldMaxWorkers,
		"--prio-workers": admin.FieldPrioWorkers,
	})
	if err != nil {
		return err
	}
	return conn.SetThreadpoolParams(server, params)
}

func clientsInfo(conn *admin.Connect, server string) error {
	params, err := conn.ClientLimits(server)
	if err != nil {
		return err
	}
	printParams(params)
	return nil
}

func clientsSet(conn *admin.Connect, server string, args []string) error {
	params, err := parseFlagUInts(args, map[string]string{
		"--max-clients":        admin.FieldMaxClients,
		"--max-unauth-clients": admin.FieldMaxUnauthClients,
	})
	if err != nil {
		return err
	}
	return conn.SetClientLimits(server, params)
}

func clientList(conn *admin.Connect, server string) error {
	clients, err := conn.ListClients(server)
	if err != nil {
		return err
	}
	fmt.Printf(" %-5s %-10s %-6s %s\n -----------------------------------------------\n",
		"Id", "Transport", "Auth", "Connected since")
	for _, c := range clients {
		auth := "no"
		if c.AuthDone {
			auth = "yes"
		}
		fmt.Printf(" %-5d %-10s %-6s %s\n", c.ID, c.Transport, auth,
			c.Connected.Format("2006-01-02 15:04:05-0700"))
	}
	return nil
}

func clientInfo(conn *admin.Connect, server, idStr string) error {
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		return fmt.Errorf("bad client id %q", idStr)
	}
	info, err := conn.GetClientInfo(server, id)
	if err != nil {
		return err
	}
	fmt.Printf("%-24s: %d\n", "id", info.ID)
	fmt.Printf("%-24s: %s\n", "transport", info.Transport)
	fmt.Printf("%-24s: %s\n", "connected since", info.Connected.Format("2006-01-02 15:04:05-0700"))
	printParams(info.Identity)
	return nil
}

func clientDisconnect(conn *admin.Connect, server, idStr string) error {
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		return fmt.Errorf("bad client id %q", idStr)
	}
	if err := conn.DisconnectClient(server, id); err != nil {
		return err
	}
	fmt.Printf("Client %d disconnected from server %s\n", id, server)
	return nil
}

func logInfo(conn *admin.Connect) error {
	level, err := conn.LoggingLevel()
	if err != nil {
		return err
	}
	filters, err := conn.LoggingFilters()
	if err != nil {
		return err
	}
	outputs, err := conn.LoggingOutputs()
	if err != nil {
		return err
	}
	fmt.Printf("Logging level:   %s\n", level)
	fmt.Printf("Logging filters: %s\n", filters)
	fmt.Printf("Logging outputs: %s\n", outputs)
	return nil
}

// splitMetricName splits a full metric name "base{labels}" into its base
// name and the label clause without braces.
func splitMetricName(full string) (base, labels string) {
	if i := strings.IndexByte(full, '{'); i >= 0 {
		return full[:i], strings.TrimSuffix(full[i+1:], "}")
	}
	return full, ""
}

// labelValue extracts one key's value from a label clause such as
// `program="remote",proc="GetHostname"`.
func labelValue(labels, key string) string {
	for _, part := range strings.Split(labels, ",") {
		if kv := strings.SplitN(part, "=", 2); len(kv) == 2 && kv[0] == key {
			return strings.Trim(kv[1], `"`)
		}
	}
	return ""
}

func metrics(conn *admin.Connect, args []string) error {
	showAll := false
	for _, a := range args {
		if a != "--all" {
			return fmt.Errorf("unknown flag %q", a)
		}
		showAll = true
	}
	r, err := conn.Metrics()
	if err != nil {
		return err
	}

	type dispatchRow struct {
		name          string
		calls, errors uint64
		p50, p95, p99 time.Duration
	}
	rows := map[string]*dispatchRow{}
	rowFor := func(labels string) *dispatchRow {
		key := labelValue(labels, "program") + "." + labelValue(labels, "proc")
		dr, ok := rows[key]
		if !ok {
			dr = &dispatchRow{name: key}
			rows[key] = dr
		}
		return dr
	}
	for _, c := range r.Counters {
		base, labels := splitMetricName(c.Name)
		switch base {
		case "daemon_dispatch_total":
			rowFor(labels).calls = c.Value
		case "daemon_dispatch_errors_total":
			rowFor(labels).errors = c.Value
		}
	}
	for _, h := range r.Histograms {
		base, labels := splitMetricName(h.Name)
		if base != "daemon_dispatch_seconds" {
			continue
		}
		dr := rowFor(labels)
		dr.p50 = time.Duration(h.P50Ns)
		dr.p95 = time.Duration(h.P95Ns)
		dr.p99 = time.Duration(h.P99Ns)
	}
	keys := make([]string, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf(" %-36s %8s %6s %10s %10s %10s\n", "Procedure", "Calls", "Errs", "p50", "p95", "p99")
	fmt.Println(" " + strings.Repeat("-", 84))
	for _, k := range keys {
		dr := rows[k]
		fmt.Printf(" %-36s %8d %6d %10v %10v %10v\n",
			dr.name, dr.calls, dr.errors, dr.p50, dr.p95, dr.p99)
	}
	if !showAll {
		return nil
	}
	fmt.Println("\nCounters:")
	for _, c := range r.Counters {
		fmt.Printf("  %-56s %d\n", c.Name, c.Value)
	}
	fmt.Println("\nGauges:")
	for _, g := range r.Gauges {
		fmt.Printf("  %-56s %d\n", g.Name, g.Value)
	}
	fmt.Println("\nHistograms:")
	for _, h := range r.Histograms {
		avg := time.Duration(0)
		if h.Count > 0 {
			avg = time.Duration(h.SumNs / h.Count)
		}
		fmt.Printf("  %-56s count=%d avg=%v p50=%v p95=%v p99=%v\n",
			h.Name, h.Count, avg,
			time.Duration(h.P50Ns), time.Duration(h.P95Ns), time.Duration(h.P99Ns))
	}
	return nil
}

// domainMetrics sweeps a driver URI once through the domain collector
// and prints the rows — the CLI face of the /metrics export, useful for
// eyeballing what the daemon would serve. --prom dumps the raw
// exposition instead of the table.
func domainMetrics(uriStr string, args []string) error {
	prom := false
	for _, a := range args {
		if a != "--prom" {
			return fmt.Errorf("unknown flag %q", a)
		}
		prom = true
	}
	quiet := logging.NewQuiet(logging.Error)
	drvtest.Register(quiet)
	qemu.Register(quiet)
	xen.Register(quiet)
	lxc.Register(quiet)
	remote.Register()
	conn, err := core.Open(uriStr)
	if err != nil {
		return err
	}
	defer conn.Close() //nolint:errcheck
	dc, err := telemetry.NewDriverDomainCollector(conn.Driver(), telemetry.DomainCollectorConfig{})
	if err != nil {
		return err
	}
	out, err := dc.Exposition()
	if err != nil {
		return err
	}
	if prom {
		_, err = os.Stdout.Write(out)
		return err
	}
	rows := dc.Rows()
	fmt.Printf(" %-24s %-36s %-12s %6s %12s %12s %12s\n",
		"Domain", "UUID", "State", "VCPUs", "Mem KiB", "CPU time", "Uptime")
	fmt.Println(" " + strings.Repeat("-", 122))
	for _, r := range rows {
		fmt.Printf(" %-24s %-36s %-12s %6d %12d %12v %12v\n",
			r.Name, r.UUID, r.State, r.VCPUs, r.MemKiB,
			time.Duration(r.CPUTimeNs).Round(time.Millisecond),
			time.Duration(r.UptimeNs).Round(time.Second))
	}
	fmt.Printf("\n%d domain(s), one bulk sweep (%v)\n", len(rows), dc.Stats().LastSweep.Round(time.Microsecond))
	return nil
}

func slowCalls(conn *admin.Connect) error {
	r, err := conn.SlowCalls()
	if err != nil {
		return err
	}
	fmt.Printf("Calls traced: %d\n", r.Started)
	fmt.Printf("Slow calls:   %d\n", r.Slow)
	fmt.Printf("Threshold:    %v\n", time.Duration(r.ThresholdNs))
	if len(r.Calls) == 0 {
		return nil
	}
	fmt.Printf("\n %-8s %-32s %-7s %-14s %10s %10s\n",
		"Serial", "Procedure", "Client", "Started", "Queue", "Total")
	fmt.Println(" " + strings.Repeat("-", 86))
	for _, c := range r.Calls {
		fmt.Printf(" %-8d %-32s %-7d %-14s %10v %10v\n",
			c.Serial, c.Program+"."+c.Proc, c.Client,
			time.Unix(0, c.StartUnix).Format("15:04:05.000"),
			time.Duration(c.QueueNs), time.Duration(c.TotalNs))
	}
	return nil
}

func qosInfo(conn *admin.Connect, server string) error {
	r, err := conn.QoS(server)
	if err != nil {
		return err
	}
	if !r.Enabled {
		fmt.Println("QoS: disabled")
		return nil
	}
	fmt.Printf("QoS: enabled, shed watermark %d\n\n", r.ShedWatermark)
	fmt.Printf(" %-10s %8s %6s %8s %8s %8s %8s  %s\n",
		"Class", "Inflight", "Queued", "rej:rate", "rej:acl", "rej:infl", "rej:shed", "Spec")
	fmt.Println(" " + strings.Repeat("-", 110))
	for _, cl := range r.Classes {
		name := cl.Spec
		if i := strings.IndexByte(name, ' '); i > 0 {
			name = name[:i]
		}
		fmt.Printf(" %-10s %8d %6d %8d %8d %8d %8d  %s\n",
			name, cl.Inflight, cl.Queued,
			cl.RejectedRate, cl.RejectedACL, cl.RejectedInflight, cl.RejectedShed, cl.Spec)
	}
	return nil
}

func qosSet(conn *admin.Connect, server string, args []string) error {
	var specs []string
	watermark := -1
	disable := false
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "--class":
			if i+1 >= len(args) {
				return fmt.Errorf("--class needs a spec string")
			}
			specs = append(specs, args[i+1])
			i++
		case "--watermark":
			if i+1 >= len(args) {
				return fmt.Errorf("--watermark needs a value")
			}
			v, err := strconv.Atoi(args[i+1])
			if err != nil || v < 0 {
				return fmt.Errorf("--watermark: bad value %q", args[i+1])
			}
			watermark = v
			i++
		case "--disable":
			disable = true
		default:
			return fmt.Errorf("unknown flag %q", args[i])
		}
	}
	if disable {
		if len(specs) > 0 || watermark >= 0 {
			return fmt.Errorf("--disable cannot be combined with --class or --watermark")
		}
		if err := conn.DisableQoS(server); err != nil {
			return err
		}
		fmt.Printf("QoS disabled on server %s\n", server)
		return nil
	}
	if len(specs) == 0 {
		return fmt.Errorf("nothing to set; pass --class (repeatable) or --disable")
	}
	if watermark < 0 {
		// Keep the server's current watermark when only classes change.
		if cur, err := conn.QoS(server); err == nil && cur.Enabled {
			watermark = int(cur.ShedWatermark)
		} else {
			watermark = 0
		}
	}
	if err := conn.SetQoS(server, specs, watermark); err != nil {
		return err
	}
	fmt.Printf("QoS updated on server %s: %d class(es), shed watermark %d\n",
		server, len(specs), watermark)
	return nil
}

func logDefine(conn *admin.Connect, args []string) error {
	did := false
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "--level":
			if i+1 >= len(args) {
				return fmt.Errorf("--level needs a value")
			}
			p, err := logging.ParsePriority(args[i+1])
			if err != nil {
				return err
			}
			if err := conn.SetLoggingLevel(p); err != nil {
				return err
			}
			did = true
			i++
		case "--filters":
			if i+1 >= len(args) {
				return fmt.Errorf("--filters needs a value")
			}
			if err := conn.SetLoggingFilters(strings.TrimSpace(args[i+1])); err != nil {
				return err
			}
			did = true
			i++
		case "--outputs":
			if i+1 >= len(args) {
				return fmt.Errorf("--outputs needs a value")
			}
			if err := conn.SetLoggingOutputs(strings.TrimSpace(args[i+1])); err != nil {
				return err
			}
			did = true
			i++
		default:
			return fmt.Errorf("unknown flag %q", args[i])
		}
	}
	if !did {
		return fmt.Errorf("nothing to define; pass --level, --filters or --outputs")
	}
	return nil
}
