package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

// capture runs fn with stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

// virshx invokes the CLI entry point against a fresh registry.
func virshx(t *testing.T, args ...string) (string, error) {
	t.Helper()
	core.ResetRegistryForTest()
	t.Cleanup(core.ResetRegistryForTest)
	return capture(t, func() error { return run(args) })
}

func TestHelpListsCommands(t *testing.T) {
	out, err := virshx(t, "help")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"list", "dominfo", "migrate", "snapshot-create", "net-list", "pool-info"} {
		if !strings.Contains(out, want) {
			t.Errorf("help missing %q", want)
		}
	}
}

func TestUnknownCommand(t *testing.T) {
	if _, err := virshx(t, "teleport"); err == nil {
		t.Fatal("unknown command accepted")
	}
}

func TestUsageErrorOnMissingArgs(t *testing.T) {
	if _, err := virshx(t, "dominfo"); err == nil || !strings.Contains(err.Error(), "usage:") {
		t.Fatalf("missing args: %v", err)
	}
}

func TestListDefaultEnvironment(t *testing.T) {
	out, err := virshx(t, "-c", "test:///default", "list")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "test") || !strings.Contains(out, "running") {
		t.Fatalf("list output:\n%s", out)
	}
}

func TestDomInfoAndStats(t *testing.T) {
	out, err := virshx(t, "-c", "test:///default", "dominfo", "test")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Name:", "UUID:", "State:", "running", "Max memory:"} {
		if !strings.Contains(out, want) {
			t.Errorf("dominfo missing %q:\n%s", want, out)
		}
	}
	out, err = virshx(t, "-c", "test:///default", "domstats", "test")
	if err != nil || !strings.Contains(out, "state") {
		t.Fatalf("domstats: %v\n%s", err, out)
	}
}

func TestLifecycleCommands(t *testing.T) {
	// Each CLI invocation opens a fresh test:///default environment, so
	// drive a full cycle in separate invocations against the canned
	// running domain.
	if _, err := virshx(t, "-c", "test:///default", "suspend", "test"); err != nil {
		t.Fatal(err)
	}
	if _, err := virshx(t, "-c", "test:///default", "destroy", "test"); err != nil {
		t.Fatal(err)
	}
	if _, err := virshx(t, "-c", "test:///default", "resume", "test"); err == nil {
		t.Fatal("resume of running domain must fail")
	}
}

func TestDefineFromFileAndDumpXML(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dom.xml")
	xml := `<domain type='test'><name>fromfile</name><memory unit='MiB'>128</memory><vcpu>1</vcpu><os><type>hvm</type></os></domain>`
	if err := os.WriteFile(path, []byte(xml), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := virshx(t, "-c", "test:///default", "define", path)
	if err != nil || !strings.Contains(out, "fromfile defined") {
		t.Fatalf("define: %v\n%s", err, out)
	}
	out, err = virshx(t, "-c", "test:///default", "dumpxml", "test")
	if err != nil || !strings.Contains(out, "<name>test</name>") {
		t.Fatalf("dumpxml: %v", err)
	}
}

func TestNetworkAndPoolCommands(t *testing.T) {
	out, err := virshx(t, "-c", "test:///default", "net-list")
	if err != nil || !strings.Contains(out, "default") || !strings.Contains(out, "active") {
		t.Fatalf("net-list: %v\n%s", err, out)
	}
	out, err = virshx(t, "-c", "test:///default", "net-dhcp-leases", "default")
	if err != nil || !strings.Contains(out, "MAC") {
		t.Fatalf("net-dhcp-leases: %v\n%s", err, out)
	}
	out, err = virshx(t, "-c", "test:///default", "pool-list")
	if err != nil || !strings.Contains(out, "default-pool") {
		t.Fatalf("pool-list: %v\n%s", err, out)
	}
	out, err = virshx(t, "-c", "test:///default", "pool-info", "default-pool")
	if err != nil || !strings.Contains(out, "Capacity:") {
		t.Fatalf("pool-info: %v\n%s", err, out)
	}
}

func TestNodeAndVersionCommands(t *testing.T) {
	out, err := virshx(t, "-c", "test:///default", "nodeinfo")
	if err != nil || !strings.Contains(out, "CPU model:") {
		t.Fatalf("nodeinfo: %v\n%s", err, out)
	}
	out, err = virshx(t, "-c", "test:///default", "hostname")
	if err != nil || !strings.Contains(out, "testhost") {
		t.Fatalf("hostname: %v\n%s", err, out)
	}
	out, err = virshx(t, "-c", "test:///default", "version")
	if err != nil || !strings.Contains(out, "Driver: test") {
		t.Fatalf("version: %v\n%s", err, out)
	}
	out, err = virshx(t, "-c", "test:///default", "capabilities")
	if err != nil || !strings.Contains(out, "<capabilities>") {
		t.Fatalf("capabilities: %v\n%s", err, out)
	}
}

func TestSnapshotCommands(t *testing.T) {
	out, err := virshx(t, "-c", "test:///default", "snapshot-create", "test", "before")
	if err != nil || !strings.Contains(out, "before created") {
		t.Fatalf("snapshot-create: %v\n%s", err, out)
	}
	// Fresh environment per invocation means the snapshot is gone in a
	// second call; verify list errors cleanly on missing snapshots.
	out, err = virshx(t, "-c", "test:///default", "snapshot-list", "test")
	if err != nil || strings.TrimSpace(out) != "" {
		t.Fatalf("snapshot-list: %v\n%q", err, out)
	}
}

func TestTuningCommands(t *testing.T) {
	if _, err := virshx(t, "-c", "test:///default", "setmem", "test", "262144"); err != nil {
		t.Fatal(err)
	}
	if _, err := virshx(t, "-c", "test:///default", "setmem", "test", "not-a-number"); err == nil {
		t.Fatal("bad setmem value accepted")
	}
	if _, err := virshx(t, "-c", "test:///default", "setvcpus", "test", "1"); err != nil {
		t.Fatal(err)
	}
	if _, err := virshx(t, "-c", "test:///default", "setvcpus", "test", "x"); err == nil {
		t.Fatal("bad setvcpus value accepted")
	}
}

func TestBadURIFails(t *testing.T) {
	if _, err := virshx(t, "-c", "://", "list"); err == nil {
		t.Fatal("bad URI accepted")
	}
}

func TestURIAliasFromConfig(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "client.conf")
	cfg := "uri_aliases = [\n  \"lab=test:///default\",\n]\n"
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Setenv("VIRSHX_CONFIG", cfgPath)
	out, err := virshx(t, "-c", "lab", "hostname")
	if err != nil || !strings.Contains(out, "testhost") {
		t.Fatalf("alias resolution: %v\n%s", err, out)
	}
	// Unknown alias falls through to URI parsing and fails cleanly.
	if _, err := virshx(t, "-c", "nonexistent-alias", "hostname"); err == nil {
		t.Fatal("unknown alias accepted")
	}
}
