package main

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestShellSessionKeepsState drives the interactive shell with a scripted
// session; because the shell holds one connection, snapshots created in
// one command are visible to the next — unlike one-shot invocations.
func TestShellSessionKeepsState(t *testing.T) {
	core.ResetRegistryForTest()
	t.Cleanup(core.ResetRegistryForTest)
	script := strings.Join([]string{
		"list",
		"snapshot-create test before",
		"snapshot-list test",
		"suspend test",
		"snapshot-revert test before",
		"dominfo test",
		"bogus-command",
		"dominfo", // usage error, shell must survive
		"",
		"quit",
	}, "\n") + "\n"

	out, err := capture(t, func() error {
		registerDrivers()
		return runShell("test:///default", strings.NewReader(script))
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Welcome to virshx",
		"before created",
		"reverted to snapshot before",
		"running", // dominfo after revert
		`error: unknown command "bogus-command"`,
		"error: usage: virshx dominfo",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("shell output missing %q:\n%s", want, out)
		}
	}
	// snapshot-list inside the session sees the snapshot.
	if !strings.Contains(out, "before\n") {
		t.Errorf("snapshot not visible within session:\n%s", out)
	}
}

func TestShellEOFExitsCleanly(t *testing.T) {
	core.ResetRegistryForTest()
	t.Cleanup(core.ResetRegistryForTest)
	_, err := capture(t, func() error {
		registerDrivers()
		return runShell("test:///default", strings.NewReader("list\n"))
	})
	if err != nil {
		t.Fatalf("EOF exit: %v", err)
	}
}
