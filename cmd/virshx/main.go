// Command virshx is the interactive management client — the virsh
// equivalent. It connects to any URI the library supports (local driver
// or remote daemon) and exposes domain, network, storage and migration
// commands uniformly across hypervisors.
//
// Usage:
//
//	virshx -c URI <command> [args...]
//	virshx -c URI help
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/drivers/lxc"
	"repro/internal/drivers/qemu"
	"repro/internal/drivers/remote"
	drvtest "repro/internal/drivers/test"
	"repro/internal/drivers/xen"
	"repro/internal/events"
	"repro/internal/logging"
	"repro/internal/migrate"
	"repro/internal/uri"
)

type command struct {
	name    string
	summary string
	usage   string
	minArgs int
	run     func(conn *core.Connect, args []string) error
}

var commands []command

func init() {
	commands = []command{
		{"list", "list domains (--all includes inactive)", "list [--all]", 0, cmdList},
		{"dominfo", "show a domain's basic information", "dominfo <domain>", 1, cmdDomInfo},
		{"domstats", "show a domain's monitoring statistics", "domstats <domain>", 1, cmdDomStats},
		{"define", "define a domain from an XML file", "define <file.xml>", 1, cmdDefine},
		{"undefine", "remove a domain definition", "undefine <domain>", 1, domainOp((*core.Domain).Undefine, "undefined")},
		{"start", "start a defined domain", "start <domain>", 1, domainOp((*core.Domain).Create, "started")},
		{"shutdown", "gracefully shut a domain down", "shutdown <domain>", 1, domainOp((*core.Domain).Shutdown, "is being shut down")},
		{"destroy", "forcefully stop a domain", "destroy <domain>", 1, domainOp((*core.Domain).Destroy, "destroyed")},
		{"reboot", "reboot a domain", "reboot <domain>", 1, domainOp((*core.Domain).Reboot, "rebooted")},
		{"suspend", "pause a domain", "suspend <domain>", 1, domainOp((*core.Domain).Suspend, "suspended")},
		{"resume", "unpause a domain", "resume <domain>", 1, domainOp((*core.Domain).Resume, "resumed")},
		{"dumpxml", "print a domain's XML definition", "dumpxml <domain>", 1, cmdDumpXML},
		{"setmem", "balloon a domain's memory", "setmem <domain> <KiB>", 2, cmdSetMem},
		{"setvcpus", "change a domain's vCPU count", "setvcpus <domain> <count>", 2, cmdSetVCPUs},
		{"migrate", "live-migrate a domain to another URI", "migrate <domain> <dest-uri> [bandwidthMBps [maxDowntimeMs]] [--streams N] [--auto-converge] [--postcopy]", 2, cmdMigrate},
		{"snapshot-create", "snapshot a domain's current state", "snapshot-create <domain> [name]", 1, cmdSnapshotCreate},
		{"snapshot-list", "list a domain's snapshots", "snapshot-list <domain>", 1, cmdSnapshotList},
		{"snapshot-revert", "revert a domain to a snapshot", "snapshot-revert <domain> <snapshot>", 2, cmdSnapshotRevert},
		{"snapshot-delete", "delete a snapshot", "snapshot-delete <domain> <snapshot>", 2, cmdSnapshotDelete},
		{"snapshot-dumpxml", "print a snapshot's description", "snapshot-dumpxml <domain> <snapshot>", 2, cmdSnapshotDumpXML},
		{"managedsave", "save a running domain's state to the host", "managedsave <domain>", 1, cmdManagedSave},
		{"managedsave-remove", "discard a managed save image", "managedsave-remove <domain>", 1, cmdManagedSaveRemove},
		{"clone", "clone a domain's definition under a new name", "clone <domain> <new-name>", 2, cmdClone},
		{"vol-clone", "clone a storage volume within its pool", "vol-clone <pool> <volume> <new-name>", 3, cmdVolClone},
		{"attach-device", "hot-plug a device from an XML file", "attach-device <domain> <file.xml>", 2, cmdAttachDevice},
		{"detach-device", "remove a device described by an XML file", "detach-device <domain> <file.xml>", 2, cmdDetachDevice},
		{"event", "watch lifecycle events for a duration", "event [seconds]", 0, cmdEvent},
		{"watch", "tail a sequenced watch stream (gap-detecting)", "watch [seconds [domain]]", 0, cmdWatch},
		{"net-list", "list virtual networks", "net-list", 0, cmdNetList},
		{"net-define", "define a network from an XML file", "net-define <file.xml>", 1, cmdNetDefine},
		{"net-start", "start a network", "net-start <network>", 1, connOp(func(c *core.Connect, n string) error { return c.StartNetwork(n) }, "started")},
		{"net-stop", "stop a network", "net-stop <network>", 1, connOp(func(c *core.Connect, n string) error { return c.StopNetwork(n) }, "stopped")},
		{"net-undefine", "remove a network definition", "net-undefine <network>", 1, connOp(func(c *core.Connect, n string) error { return c.UndefineNetwork(n) }, "undefined")},
		{"net-dumpxml", "print a network's XML", "net-dumpxml <network>", 1, cmdNetDumpXML},
		{"net-dhcp-leases", "list a network's DHCP leases", "net-dhcp-leases <network>", 1, cmdNetLeases},
		{"pool-list", "list storage pools", "pool-list", 0, cmdPoolList},
		{"pool-define", "define a pool from an XML file", "pool-define <file.xml>", 1, cmdPoolDefine},
		{"pool-start", "start a pool", "pool-start <pool>", 1, connOp(func(c *core.Connect, n string) error { return c.StartStoragePool(n) }, "started")},
		{"pool-stop", "stop a pool", "pool-stop <pool>", 1, connOp(func(c *core.Connect, n string) error { return c.StopStoragePool(n) }, "stopped")},
		{"pool-info", "show a pool's space accounting", "pool-info <pool>", 1, cmdPoolInfo},
		{"vol-list", "list volumes in a pool", "vol-list <pool>", 1, cmdVolList},
		{"vol-create", "create a volume from an XML file", "vol-create <pool> <file.xml>", 2, cmdVolCreate},
		{"vol-delete", "delete a volume", "vol-delete <pool> <volume>", 2, cmdVolDelete},
		{"nodeinfo", "show host node information", "nodeinfo", 0, cmdNodeInfo},
		{"capabilities", "print the capabilities document", "capabilities", 0, cmdCapabilities},
		{"hostname", "print the managed host's name", "hostname", 0, cmdHostname},
		{"version", "print the hypervisor version", "version", 0, cmdVersion},
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	uriStr := "test:///default"
	if len(args) >= 2 && args[0] == "-c" {
		uriStr = args[1]
		args = args[2:]
	}
	if len(args) == 0 || args[0] == "help" {
		printHelp()
		return nil
	}
	uriStr = resolveAlias(uriStr)
	registerDrivers()
	if args[0] == "shell" {
		return runShell(uriStr, os.Stdin)
	}
	conn, err := core.Open(uriStr)
	if err != nil {
		return err
	}
	defer conn.Close()
	return dispatch(conn, args)
}

// dispatch resolves and runs one command against an open connection.
func dispatch(conn *core.Connect, args []string) error {
	var cmd *command
	for i := range commands {
		if commands[i].name == args[0] {
			cmd = &commands[i]
			break
		}
	}
	if cmd == nil {
		return fmt.Errorf("unknown command %q (try \"help\")", args[0])
	}
	if len(args)-1 < cmd.minArgs {
		return fmt.Errorf("usage: virshx %s", cmd.usage)
	}
	return cmd.run(conn, args[1:])
}

// runShell is the interactive mode: one persistent connection, commands
// read line by line, so state (definitions, snapshots) carries across
// commands within the session.
func runShell(uriStr string, in io.Reader) error {
	conn, err := core.Open(uriStr)
	if err != nil {
		return err
	}
	defer conn.Close()
	fmt.Printf("Welcome to virshx, the virtualization interactive terminal.\n")
	fmt.Printf("Connected to %s. Type 'help' for commands, 'quit' to leave.\n\n", uriStr)
	scanner := bufio.NewScanner(in)
	for {
		fmt.Print("virshx # ")
		if !scanner.Scan() {
			fmt.Println()
			return scanner.Err()
		}
		fields := strings.Fields(scanner.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			return nil
		case "help":
			printHelp()
			continue
		}
		if err := dispatch(conn, fields); err != nil {
			fmt.Printf("error: %v\n", err)
		}
	}
}

// resolveAlias expands -c values through the uri_aliases table of the
// client configuration file named by $VIRSHX_CONFIG (the libvirt.conf
// equivalent). Unknown names and real URIs pass through unchanged.
func resolveAlias(s string) string {
	path := os.Getenv("VIRSHX_CONFIG")
	if path == "" {
		return s
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "warning: cannot read %s: %v\n", path, err)
		return s
	}
	aliases, err := uri.ParseAliases(string(data))
	if err != nil {
		fmt.Fprintf(os.Stderr, "warning: %v\n", err)
		return s
	}
	if full, ok := aliases[s]; ok {
		return full
	}
	return s
}

func registerDrivers() {
	log := logging.NewQuiet(logging.Error)
	drvtest.Register(log)
	qemu.Register(log)
	xen.Register(log)
	lxc.Register(log)
	remote.Register()
}

func printHelp() {
	fmt.Println("virshx — uniform virtualization management client")
	fmt.Println("usage: virshx [-c URI] <command> [args...]")
	fmt.Println()
	names := make([]string, len(commands))
	for i, c := range commands {
		names[i] = c.name
	}
	sort.Strings(names)
	for _, n := range names {
		for _, c := range commands {
			if c.name == n {
				fmt.Printf("  %-17s %s\n", c.name, c.summary)
			}
		}
	}
}

func domainOp(op func(*core.Domain) error, done string) func(*core.Connect, []string) error {
	return func(conn *core.Connect, args []string) error {
		dom, err := conn.LookupDomain(args[0])
		if err != nil {
			return err
		}
		if err := op(dom); err != nil {
			return err
		}
		fmt.Printf("Domain %s %s\n", args[0], done)
		return nil
	}
}

func connOp(op func(*core.Connect, string) error, done string) func(*core.Connect, []string) error {
	return func(conn *core.Connect, args []string) error {
		if err := op(conn, args[0]); err != nil {
			return err
		}
		fmt.Printf("%s %s\n", args[0], done)
		return nil
	}
}

func cmdList(conn *core.Connect, args []string) error {
	flags := core.ListActive
	if len(args) > 0 && args[0] == "--all" {
		flags = 0
	}
	doms, err := conn.ListAllDomains(flags)
	if err != nil {
		return err
	}
	fmt.Printf(" %-5s %-20s %s\n %s\n", "Id", "Name", "State", "---------------------------------")
	for _, d := range doms {
		st, err := d.State()
		if err != nil {
			return err
		}
		id := "-"
		if d.ID() > 0 {
			id = strconv.Itoa(d.ID())
		}
		fmt.Printf(" %-5s %-20s %s\n", id, d.Name(), st)
	}
	return nil
}

func cmdDomInfo(conn *core.Connect, args []string) error {
	dom, err := conn.LookupDomain(args[0])
	if err != nil {
		return err
	}
	info, err := dom.Info()
	if err != nil {
		return err
	}
	fmt.Printf("%-15s %s\n", "Name:", dom.Name())
	fmt.Printf("%-15s %s\n", "UUID:", dom.UUID())
	fmt.Printf("%-15s %s\n", "State:", info.State)
	fmt.Printf("%-15s %d\n", "CPU(s):", info.VCPUs)
	fmt.Printf("%-15s %.1fs\n", "CPU time:", float64(info.CPUTimeNs)/1e9)
	fmt.Printf("%-15s %d KiB\n", "Max memory:", info.MaxMemKiB)
	fmt.Printf("%-15s %d KiB\n", "Used memory:", info.MemKiB)
	return nil
}

func cmdDomStats(conn *core.Connect, args []string) error {
	dom, err := conn.LookupDomain(args[0])
	if err != nil {
		return err
	}
	st, err := dom.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("%s:\n", dom.Name())
	fmt.Printf("  state          %s\n", st.State)
	fmt.Printf("  cpu time       %.3fs\n", float64(st.CPUTimeNs)/1e9)
	fmt.Printf("  memory         %d/%d KiB\n", st.MemKiB, st.MaxMemKiB)
	fmt.Printf("  vcpus          %d\n", st.VCPUs)
	fmt.Printf("  block rd/wr    %d/%d reqs, %d/%d bytes\n", st.RdReqs, st.WrReqs, st.RdBytes, st.WrBytes)
	fmt.Printf("  net rx/tx      %d/%d pkts, %d/%d bytes\n", st.RxPkts, st.TxPkts, st.RxBytes, st.TxBytes)
	fmt.Printf("  dirty pages    %d\n", st.DirtyPages)
	return nil
}

func cmdDefine(conn *core.Connect, args []string) error {
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	dom, err := conn.DefineDomain(string(data))
	if err != nil {
		return err
	}
	fmt.Printf("Domain %s defined (UUID %s)\n", dom.Name(), dom.UUID())
	return nil
}

func cmdDumpXML(conn *core.Connect, args []string) error {
	dom, err := conn.LookupDomain(args[0])
	if err != nil {
		return err
	}
	xml, err := dom.XML()
	if err != nil {
		return err
	}
	fmt.Print(xml)
	return nil
}

func cmdSetMem(conn *core.Connect, args []string) error {
	kib, err := strconv.ParseUint(args[1], 10, 64)
	if err != nil {
		return fmt.Errorf("bad memory size %q", args[1])
	}
	dom, err := conn.LookupDomain(args[0])
	if err != nil {
		return err
	}
	return dom.SetMemory(kib)
}

func cmdSetVCPUs(conn *core.Connect, args []string) error {
	n, err := strconv.Atoi(args[1])
	if err != nil {
		return fmt.Errorf("bad vcpu count %q", args[1])
	}
	dom, err := conn.LookupDomain(args[0])
	if err != nil {
		return err
	}
	return dom.SetVCPUs(n)
}

func cmdMigrate(conn *core.Connect, args []string) error {
	dom, err := conn.LookupDomain(args[0])
	if err != nil {
		return err
	}
	dst, err := core.Open(args[1])
	if err != nil {
		return err
	}
	defer dst.Close()
	opts := core.MigrateOptions{}
	pos := 0
	for i := 2; i < len(args); i++ {
		switch args[i] {
		case "--streams":
			if i+1 >= len(args) {
				return fmt.Errorf("--streams needs a value")
			}
			n, err := strconv.Atoi(args[i+1])
			if err != nil || n < 1 {
				return fmt.Errorf("--streams: bad value %q", args[i+1])
			}
			opts.ParallelStreams = n
			i++
		case "--auto-converge":
			opts.AutoConverge = true
		case "--postcopy":
			opts.PostCopy = true
		default:
			n, err := strconv.ParseUint(args[i], 10, 64)
			if err != nil {
				return fmt.Errorf("bad argument %q", args[i])
			}
			switch pos {
			case 0:
				opts.BandwidthMBps = n
			case 1:
				opts.MaxDowntimeMs = n
			default:
				return fmt.Errorf("too many arguments")
			}
			pos++
		}
	}
	res, err := migrate.Migrate(dom, dst, opts)
	if err != nil {
		return err
	}
	fmt.Printf("Migration complete (%s, %d stream(s)): %d iterations, %.1f ms total, %.1f ms downtime, %d KiB transferred, converged=%v\n",
		res.Mode, res.Streams, res.Iterations, res.TotalTimeMs(), res.DowntimeMs(), res.TransferredKiB, res.Converged)
	if res.ThrottleSteps > 0 {
		fmt.Printf("Auto-convergence throttled the source %d step(s), peaking at %.0f%%\n",
			res.ThrottleSteps, res.MaxThrottle*100)
	}
	if res.Mode == migrate.ModePostCopy {
		fmt.Printf("Post-copy pulled %d faulted page(s) after switch-over\n", res.PostCopyFaults)
	}
	if res.RetransmitKiB > 0 {
		fmt.Printf("Retransmitted %d KiB after stream loss\n", res.RetransmitKiB)
	}
	return nil
}

func cmdClone(conn *core.Connect, args []string) error {
	clone, err := core.CloneDomain(conn, args[0], args[1])
	if err != nil {
		return err
	}
	fmt.Printf("Clone of domain %s created: %s (UUID %s)\n", args[0], clone.Name(), clone.UUID())
	return nil
}

func cmdVolClone(conn *core.Connect, args []string) error {
	if err := core.CloneVolume(conn, args[0], args[1], args[2]); err != nil {
		return err
	}
	fmt.Printf("Volume %s cloned to %s in pool %s\n", args[1], args[2], args[0])
	return nil
}

func cmdAttachDevice(conn *core.Connect, args []string) error {
	dom, err := conn.LookupDomain(args[0])
	if err != nil {
		return err
	}
	data, err := os.ReadFile(args[1])
	if err != nil {
		return err
	}
	if err := dom.AttachDevice(string(data)); err != nil {
		return err
	}
	fmt.Println("Device attached successfully")
	return nil
}

func cmdDetachDevice(conn *core.Connect, args []string) error {
	dom, err := conn.LookupDomain(args[0])
	if err != nil {
		return err
	}
	data, err := os.ReadFile(args[1])
	if err != nil {
		return err
	}
	if err := dom.DetachDevice(string(data)); err != nil {
		return err
	}
	fmt.Println("Device detached successfully")
	return nil
}

func cmdSnapshotCreate(conn *core.Connect, args []string) error {
	dom, err := conn.LookupDomain(args[0])
	if err != nil {
		return err
	}
	xml := ""
	if len(args) > 1 {
		xml = fmt.Sprintf("<domainsnapshot><name>%s</name></domainsnapshot>", args[1])
	}
	name, err := dom.CreateSnapshot(xml)
	if err != nil {
		return err
	}
	fmt.Printf("Domain snapshot %s created\n", name)
	return nil
}

func cmdSnapshotList(conn *core.Connect, args []string) error {
	dom, err := conn.LookupDomain(args[0])
	if err != nil {
		return err
	}
	snaps, err := dom.ListSnapshots()
	if err != nil {
		return err
	}
	for _, s := range snaps {
		fmt.Println(s)
	}
	return nil
}

func cmdSnapshotRevert(conn *core.Connect, args []string) error {
	dom, err := conn.LookupDomain(args[0])
	if err != nil {
		return err
	}
	if err := dom.RevertSnapshot(args[1]); err != nil {
		return err
	}
	fmt.Printf("Domain %s reverted to snapshot %s\n", args[0], args[1])
	return nil
}

func cmdSnapshotDelete(conn *core.Connect, args []string) error {
	dom, err := conn.LookupDomain(args[0])
	if err != nil {
		return err
	}
	if err := dom.DeleteSnapshot(args[1]); err != nil {
		return err
	}
	fmt.Printf("Domain snapshot %s deleted\n", args[1])
	return nil
}

func cmdSnapshotDumpXML(conn *core.Connect, args []string) error {
	dom, err := conn.LookupDomain(args[0])
	if err != nil {
		return err
	}
	xml, err := dom.SnapshotXML(args[1])
	if err != nil {
		return err
	}
	fmt.Print(xml)
	return nil
}

func cmdManagedSave(conn *core.Connect, args []string) error {
	dom, err := conn.LookupDomain(args[0])
	if err != nil {
		return err
	}
	if err := dom.ManagedSave(); err != nil {
		return err
	}
	fmt.Printf("Domain %s state saved by libvirt-style managed save\n", args[0])
	return nil
}

func cmdManagedSaveRemove(conn *core.Connect, args []string) error {
	dom, err := conn.LookupDomain(args[0])
	if err != nil {
		return err
	}
	if err := dom.ManagedSaveRemove(); err != nil {
		return err
	}
	fmt.Printf("Removed managed save image for domain %s\n", args[0])
	return nil
}

func cmdEvent(conn *core.Connect, args []string) error {
	secs := 2
	if len(args) > 0 {
		n, err := strconv.Atoi(args[0])
		if err != nil || n <= 0 {
			return fmt.Errorf("bad duration %q", args[0])
		}
		secs = n
	}
	id, err := conn.SubscribeEvents("", nil, func(ev events.Event) {
		fmt.Printf("event %-10s domain %s (%s)\n", ev.Type, ev.Domain, ev.Detail)
	})
	if err != nil {
		return err
	}
	defer conn.UnsubscribeEvents(id) //nolint:errcheck
	fmt.Printf("watching events for %ds...\n", secs)
	time.Sleep(time.Duration(secs) * time.Second)
	return nil
}

// cmdWatch tails a server-push watch stream: unlike "event" it rides
// the sequenced EventSubscribe protocol when the connection is remote,
// so dropped or coalesced frames are visible as flagged gaps instead of
// silently missing lines.
func cmdWatch(conn *core.Connect, args []string) error {
	secs := 2
	if len(args) > 0 {
		n, err := strconv.Atoi(args[0])
		if err != nil || n <= 0 {
			return fmt.Errorf("bad duration %q", args[0])
		}
		secs = n
	}
	domain := ""
	if len(args) > 1 {
		domain = args[1]
	}
	handle, err := conn.WatchEvents(domain, nil, func(ev events.Event, gap bool) {
		if gap {
			fmt.Printf("gap        -- events lost; a consumer would resync here\n")
		}
		if ev.Type != 0 {
			fmt.Printf("watch %-10s domain %s (%s) seq %d\n", ev.Type, ev.Domain, ev.Detail, ev.Seq)
		}
	})
	if err != nil {
		return err
	}
	defer handle.Close() //nolint:errcheck
	fmt.Printf("watching stream for %ds...\n", secs)
	time.Sleep(time.Duration(secs) * time.Second)
	return nil
}

func cmdNetList(conn *core.Connect, args []string) error {
	nets, err := conn.ListNetworks()
	if err != nil {
		return err
	}
	fmt.Printf(" %-20s %s\n ------------------------------\n", "Name", "State")
	for _, n := range nets {
		active, err := conn.NetworkIsActive(n)
		if err != nil {
			return err
		}
		state := "inactive"
		if active {
			state = "active"
		}
		fmt.Printf(" %-20s %s\n", n, state)
	}
	return nil
}

func cmdNetDefine(conn *core.Connect, args []string) error {
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	return conn.DefineNetwork(string(data))
}

func cmdNetDumpXML(conn *core.Connect, args []string) error {
	xml, err := conn.NetworkXML(args[0])
	if err != nil {
		return err
	}
	fmt.Print(xml)
	return nil
}

func cmdNetLeases(conn *core.Connect, args []string) error {
	leases, err := conn.NetworkDHCPLeases(args[0])
	if err != nil {
		return err
	}
	fmt.Printf(" %-18s %-16s %s\n -----------------------------------------\n", "MAC", "IP", "Hostname")
	for _, l := range leases {
		fmt.Printf(" %-18s %-16s %s\n", l.MAC, l.IP, l.Hostname)
	}
	return nil
}

func cmdPoolList(conn *core.Connect, args []string) error {
	pools, err := conn.ListStoragePools()
	if err != nil {
		return err
	}
	fmt.Printf(" %-20s %s\n ------------------------------\n", "Name", "State")
	for _, p := range pools {
		info, err := conn.StoragePoolInfo(p)
		if err != nil {
			return err
		}
		state := "inactive"
		if info.Active {
			state = "active"
		}
		fmt.Printf(" %-20s %s\n", p, state)
	}
	return nil
}

func cmdPoolDefine(conn *core.Connect, args []string) error {
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	return conn.DefineStoragePool(string(data))
}

func cmdPoolInfo(conn *core.Connect, args []string) error {
	info, err := conn.StoragePoolInfo(args[0])
	if err != nil {
		return err
	}
	fmt.Printf("%-13s %s\n", "Name:", args[0])
	fmt.Printf("%-13s %v\n", "Active:", info.Active)
	fmt.Printf("%-13s %d KiB\n", "Capacity:", info.CapacityKiB)
	fmt.Printf("%-13s %d KiB\n", "Allocation:", info.AllocationKiB)
	fmt.Printf("%-13s %d KiB\n", "Available:", info.AvailableKiB)
	return nil
}

func cmdVolList(conn *core.Connect, args []string) error {
	vols, err := conn.ListVolumes(args[0])
	if err != nil {
		return err
	}
	for _, v := range vols {
		fmt.Println(v)
	}
	return nil
}

func cmdVolCreate(conn *core.Connect, args []string) error {
	data, err := os.ReadFile(args[1])
	if err != nil {
		return err
	}
	return conn.CreateVolume(args[0], string(data))
}

func cmdVolDelete(conn *core.Connect, args []string) error {
	return conn.DeleteVolume(args[0], args[1])
}

func cmdNodeInfo(conn *core.Connect, args []string) error {
	ni, err := conn.NodeInfo()
	if err != nil {
		return err
	}
	fmt.Printf("%-20s %s\n", "CPU model:", ni.Model)
	fmt.Printf("%-20s %d\n", "CPU(s):", ni.CPUs)
	fmt.Printf("%-20s %d MHz\n", "CPU frequency:", ni.MHz)
	fmt.Printf("%-20s %d\n", "CPU socket(s):", ni.Sockets)
	fmt.Printf("%-20s %d\n", "Core(s) per socket:", ni.Cores)
	fmt.Printf("%-20s %d\n", "Thread(s) per core:", ni.Threads)
	fmt.Printf("%-20s %d\n", "NUMA cell(s):", ni.NUMANodes)
	fmt.Printf("%-20s %d KiB\n", "Memory size:", ni.MemoryKiB)
	return nil
}

func cmdCapabilities(conn *core.Connect, args []string) error {
	caps, err := conn.CapabilitiesXML()
	if err != nil {
		return err
	}
	fmt.Print(caps)
	return nil
}

func cmdHostname(conn *core.Connect, args []string) error {
	hn, err := conn.Hostname()
	if err != nil {
		return err
	}
	fmt.Println(hn)
	return nil
}

func cmdVersion(conn *core.Connect, args []string) error {
	v, err := conn.Version()
	if err != nil {
		return err
	}
	t, err := conn.Type()
	if err != nil {
		return err
	}
	fmt.Printf("Driver: %s\nVersion: %s\n", t, v)
	return nil
}
