// Command benchreport regenerates every table and figure of the
// reconstructed evaluation (DESIGN.md, Experiment index) and prints them
// in paper style. Timing rows are medians over repeated runs on the
// local machine; simulated rows come from the deterministic models and
// are machine-independent.
//
// Usage:
//
//	benchreport [table|figure id ...]   # default: all
//	benchreport --json                  # machine-readable fast-path metrics
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/admin"
	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/drivers/common"
	"repro/internal/drivers/lxc"
	"repro/internal/drivers/qemu"
	"repro/internal/drivers/remote"
	drvtest "repro/internal/drivers/test"
	"repro/internal/drivers/xen"
	"repro/internal/faultpoint"
	"repro/internal/fleet"
	"repro/internal/hyper"
	"repro/internal/hyper/qsim"
	"repro/internal/hyper/xsim"
	"repro/internal/logging"
	"repro/internal/migrate"
	"repro/internal/nodeinfo"
	"repro/internal/qos"
	"repro/internal/rpc"
	"repro/internal/scale"
	"repro/internal/telemetry"
	"repro/internal/typedparams"
	"repro/internal/uri"
)

var quiet = logging.NewQuiet(logging.Error)

func main() {
	all := map[string]func(){
		"T1": tableT1, "T2": tableT2, "T2B": tableT2b, "T3": tableT3, "T4": tableT4,
		"T5": tableT5, "T6": tableT6, "T7": tableT7, "T8": tableT8, "T9": tableT9,
		"T10": tableT10, "T11": tableT11, "T12": tableT12,
		"F1": figureF1, "F2": figureF2, "F3": figureF3, "F4": figureF4, "F5": figureF5,
		"R1": tableR1, "R2": tableR2,
		"A3": ablationA3,
	}
	order := []string{"T1", "T2", "T2B", "T3", "T4", "T5", "T6", "T7", "T8", "T9", "T10", "T11", "T12", "F1", "F2", "F3", "F4", "F5", "R1", "R2", "A3"}
	want := os.Args[1:]
	if len(want) == 1 && want[0] == "--json" {
		emitJSON()
		return
	}
	if len(want) == 1 && want[0] == "--trajectory" {
		trajectory()
		return
	}
	if len(want) == 0 {
		want = order
	}
	for _, id := range want {
		fn, ok := all[strings.ToUpper(id)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (have %s)\n", id, strings.Join(order, " "))
			os.Exit(1)
		}
		fn()
		fmt.Println()
	}
}

// median measures fn over runs iterations and returns the median.
func median(runs int, fn func()) time.Duration {
	times := make([]time.Duration, runs)
	for i := range times {
		start := time.Now()
		fn()
		times[i] = time.Since(start)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[runs/2]
}

// perOp measures fn over iters iterations, repeated, returning median
// per-operation time.
func perOp(iters int, fn func()) time.Duration {
	return median(7, func() {
		for i := 0; i < iters; i++ {
			fn()
		}
	}) / time.Duration(iters)
}

func openDriver(name string) core.DriverConn {
	u := &uri.URI{Driver: name, Path: "/system"}
	var (
		drv core.DriverConn
		err error
	)
	switch name {
	case "qsim":
		drv, err = qemu.New(u, quiet)
	case "xsim":
		drv, err = xen.New(u, quiet)
	case "csim":
		drv, err = lxc.New(u, quiet)
	case "test":
		u.Path = "/empty"
		drv, err = drvtest.New(u, quiet)
	}
	if err != nil {
		panic(err)
	}
	return drv
}

func domainXML(driver, name string) string {
	return fmt.Sprintf(`<domain type='%s'><name>%s</name><description>cpu_util=0.4 dirty_pages_sec=1000</description><memory unit='MiB'>512</memory><vcpu>2</vcpu><os><type arch='x86_64'>hvm</type></os></domain>`, driver, name)
}

func header(id, title string, cols ...string) {
	fmt.Printf("== %s: %s ==\n", id, title)
	for _, c := range cols {
		fmt.Print(c)
	}
	fmt.Println()
	fmt.Println(strings.Repeat("-", 72))
}

func tableT1() {
	header("Table T1", "management-operation latency: uniform API vs native interface",
		fmt.Sprintf("%-10s %-14s %-14s %-10s", "driver", "uniform", "native", "overhead"))

	row := func(driver string, uniform, native time.Duration) {
		over := "n/a"
		if native > 0 {
			over = fmt.Sprintf("%.2fx", float64(uniform)/float64(native))
		}
		nat := "n/a"
		if native > 0 {
			nat = native.String()
		}
		fmt.Printf("%-10s %-14s %-14s %-10s\n", driver, uniform, nat, over)
	}

	// qsim
	{
		drv := openDriver("qsim")
		must(defStart(drv, "qsim", "vm"))
		uniform := perOp(2000, func() { drv.DomainInfo("vm") }) //nolint:errcheck

		node, _ := nodeinfo.NewNode("n", nodeinfo.ProfileServer)
		hv := qsim.New(node)
		e, err := hv.Launch(hyper.Config{Name: "vm", VCPUs: 2, MemKiB: 512 * 1024})
		must(err)
		must(e.Monitor().ExecuteCommand("system_boot", nil, nil))
		var st struct {
			Status string `json:"status"`
		}
		native := perOp(2000, func() { e.Monitor().ExecuteCommand("query-status", nil, &st) }) //nolint:errcheck
		row("qsim", uniform, native)
	}
	// xsim
	{
		drv := openDriver("xsim")
		must(defStart(drv, "xsim", "vm"))
		uniform := perOp(2000, func() { drv.DomainInfo("vm") }) //nolint:errcheck

		node, _ := nodeinfo.NewNode("n", nodeinfo.ProfileServer)
		hv := xsim.New(node)
		res := hv.Call(xsim.Domain0, xsim.Hypercall{Op: xsim.OpDomainCreate, Args: xsim.CreateArgs{
			Name: "vm", VCPUs: 2, MemKiB: 512 * 1024,
		}})
		must(res.Err)
		id := res.Value.(xsim.DomID)
		native := perOp(2000, func() {
			hv.Call(xsim.Domain0, xsim.Hypercall{Op: xsim.OpDomainGetInfo, Dom: id})
		})
		row("xsim", uniform, native)
	}
	// csim
	{
		drv := openDriver("csim")
		must(defStart(drv, "csim", "vm"))
		uniform := perOp(2000, func() { drv.DomainInfo("vm") }) //nolint:errcheck
		row("csim", uniform, 0)
	}
}

func tableT2() {
	header("Table T2", "round-trip latency by transport (Hostname / DomainInfo)",
		fmt.Sprintf("%-10s %-14s %-14s", "transport", "hostname", "dominfo"))

	measure := func(conn *core.Connect) (time.Duration, time.Duration) {
		dom, err := conn.LookupDomain("test")
		must(err)
		h := perOp(500, func() { conn.Hostname() }) //nolint:errcheck
		d := perOp(500, func() { dom.Info() })      //nolint:errcheck
		return h, d
	}

	// Local in-process.
	{
		u, _ := uri.Parse("test:///default")
		drv, err := drvtest.New(u, quiet)
		must(err)
		conn := core.OpenWith(u, drv)
		h, d := measure(conn)
		fmt.Printf("%-10s %-14s %-14s\n", "local", h, d)
	}
	// unix / tcp via daemon.
	for _, tr := range []string{"unix", "tcp"} {
		conn, shutdown := benchDaemon(tr)
		h, d := measure(conn)
		fmt.Printf("%-10s %-14s %-14s\n", tr, h, d)
		shutdown()
	}
}

func benchDaemon(transport string) (*core.Connect, func()) {
	return benchDaemonOn(transport, daemon.New(quiet))
}

// sweepPayload builds a 64-row monitoring reply, the steady-state unit
// of the codec comparison.
func sweepPayload() *struct{ Domains []core.NamedDomainInfo } {
	rows := make([]core.NamedDomainInfo, 64)
	for i := range rows {
		rows[i] = core.NamedDomainInfo{
			Name: fmt.Sprintf("vm%04d", i),
			Info: core.DomainInfo{
				State: core.DomainRunning, MaxMemKiB: 1 << 21,
				MemKiB: 1 << 20, VCPUs: 2, CPUTimeNs: uint64(i) * 1e9,
			},
		}
	}
	return &struct{ Domains []core.NamedDomainInfo }{rows}
}

// t2bCodec benchmarks the reflective and compiled codecs over the same
// 64-row payload, returning ns/op and allocs/op for each stage.
type codecStats struct {
	ReflectNs, CompiledNs         int64
	ReflectAllocs, CompiledAllocs int64
}

func benchCodec() (marshal, unmarshal codecStats) {
	v := sweepPayload()
	data, err := rpc.Marshal(v)
	must(err)
	bench := func(fn func()) (int64, int64) {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fn()
			}
		})
		return res.NsPerOp(), res.AllocsPerOp()
	}
	marshal.ReflectNs, marshal.ReflectAllocs = bench(func() { rpc.MarshalReflect(v) }) //nolint:errcheck
	marshal.CompiledNs, marshal.CompiledAllocs = bench(func() { rpc.Marshal(v) })      //nolint:errcheck
	unmarshal.ReflectNs, unmarshal.ReflectAllocs = bench(func() {
		var out struct{ Domains []core.NamedDomainInfo }
		rpc.UnmarshalReflect(data, &out) //nolint:errcheck
	})
	unmarshal.CompiledNs, unmarshal.CompiledAllocs = bench(func() {
		var out struct{ Domains []core.NamedDomainInfo }
		rpc.Unmarshal(data, &out) //nolint:errcheck
	})
	return marshal, unmarshal
}

// benchSweep measures the live 64-domain monitoring sweep over a unix
// socket: one DomainInfo round trip, the per-domain loop, and the bulk
// procedure in its steady-state (retained inventory) form.
func benchSweep() (single, singles, bulk time.Duration) {
	conn, shutdown := benchDaemon("unix")
	defer shutdown()
	const domains = 64
	for i := 0; i < domains; i++ {
		name := fmt.Sprintf("vm%04d", i)
		_, err := conn.DefineDomain(fmt.Sprintf(
			`<domain type='test'><name>%s</name><memory unit='MiB'>128</memory><vcpu>2</vcpu><os><type>hvm</type></os></domain>`, name))
		must(err)
		dom, err := conn.LookupDomain(name)
		must(err)
		must(dom.Create())
	}
	dom, err := conn.LookupDomain("vm0000")
	must(err)
	single = perOp(2000, func() { dom.Info() }) //nolint:errcheck
	doms, err := conn.ListAllDomains(0)
	must(err)
	singles = perOp(20, func() {
		for _, d := range doms {
			d.Info() //nolint:errcheck
		}
	})
	var inv core.NodeInventory
	bulk = perOp(500, func() {
		must(conn.NodeInventoryInto(&inv))
		if len(inv.Domains) < domains {
			must(fmt.Errorf("sweep lost rows: %d", len(inv.Domains)))
		}
	})
	return single, singles, bulk
}

// tableT2b is the fast-path table: compiled codec vs reflection on a
// 64-row monitoring payload, and the live bulk sweep against the
// per-domain loop it replaces.
func tableT2b() {
	header("Table T2b", "RPC fast path: compiled codec vs reflection; bulk sweep vs per-domain loop",
		fmt.Sprintf("%-26s %-16s %-16s %-12s", "case", "reflect/singles", "compiled/bulk", "gain"))
	mar, unm := benchCodec()
	row := func(name string, s codecStats) {
		fmt.Printf("%-26s %-16s %-16s %-12s\n", name,
			fmt.Sprintf("%dns/%da", s.ReflectNs, s.ReflectAllocs),
			fmt.Sprintf("%dns/%da", s.CompiledNs, s.CompiledAllocs),
			fmt.Sprintf("%.1fx", float64(s.ReflectNs)/float64(s.CompiledNs)))
	}
	row("codec/marshal-64rows", mar)
	row("codec/unmarshal-64rows", unm)
	single, singles, bulk := benchSweep()
	fmt.Printf("%-26s %-16s %-16s %-12s\n", "live/single-dominfo", "-", single, "-")
	fmt.Printf("%-26s %-16s %-16s %-12s\n", "live/sweep-64", singles, bulk,
		fmt.Sprintf("%.1fx", float64(singles)/float64(bulk)))
	fmt.Printf("bulk sweep vs one round trip: %.2fx\n", float64(bulk)/float64(single))
}

// scrapeStats is one measured scrape configuration for T9.
type scrapeStats struct {
	Domains      int
	SweepNs      int64 // scrape outside the staleness window
	SweepAllocs  int64
	CachedNs     int64 // scrape inside the window
	CachedAllocs int64
	Bytes        int
}

// benchScrape measures one domain-count point of the T9 table: the cost
// of a swept scrape (staleness 0) and a cached one (large staleness)
// against a test driver carrying n defined domains.
func benchScrape(n int) scrapeStats {
	drv := openDriver("test")
	for i := 0; i < n; i++ {
		_, err := drv.DefineDomain(domainXML("test", fmt.Sprintf("vm%05d", i)))
		must(err)
	}
	mk := func(staleness time.Duration) *telemetry.DomainCollector {
		dc, err := telemetry.NewDriverDomainCollector(drv, telemetry.DomainCollectorConfig{
			Staleness: staleness,
			Labels:    []string{"domain", "state"},
		})
		must(err)
		_, err = dc.Exposition() // warm buffers and caches
		must(err)
		return dc
	}
	bench := func(dc *telemetry.DomainCollector) (int64, int64, int) {
		var size int
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := dc.Exposition()
				must(err)
				size = len(out)
			}
		})
		return res.NsPerOp(), res.AllocsPerOp(), size
	}
	st := scrapeStats{Domains: n}
	st.SweepNs, st.SweepAllocs, st.Bytes = bench(mk(0))
	st.CachedNs, st.CachedAllocs, _ = bench(mk(time.Hour))
	return st
}

// tableT9 is the per-domain metrics export table: one /metrics scrape
// as a function of domain count, sweeping versus cached.
func tableT9() {
	header("Table T9", "per-domain /metrics scrape: bulk sweep vs staleness cache",
		fmt.Sprintf("%-10s %-14s %-12s %-14s %-12s %-12s",
			"domains", "sweep", "allocs", "cached", "allocs", "bytes"))
	for _, n := range []int{100, 1000, 10000} {
		st := benchScrape(n)
		fmt.Printf("%-10d %-14s %-12d %-14s %-12d %-12d\n",
			n, time.Duration(st.SweepNs), st.SweepAllocs,
			time.Duration(st.CachedNs), st.CachedAllocs, st.Bytes)
	}
}

// scaleStats is one tier of the T8 mega-fleet measurement: a real
// in-process fleet (scale harness) brought up, seeded, and probed.
type scaleStats struct {
	Hosts         int
	Domains       int
	SettleNs      int64
	SeedNs        int64
	SchedP50Ns    int64
	SchedP99Ns    int64
	PlanNs        int64
	PlanMoves     int
	SummariesNs   int64
	RegistryBytes uint64
}

func benchScale(hosts, domainsPerHost, probes int) scaleStats {
	core.ResetRegistryForTest()
	drvtest.Register(quiet)
	remote.Register()
	f, err := scale.Launch(scale.Options{
		Hosts:          hosts,
		DomainsPerHost: domainsPerHost,
		PollInterval:   time.Hour, // poll noise off; refreshes are explicit
		Log:            quiet,
	})
	must(err)
	defer func() {
		f.Close()
		core.ResetRegistryForTest()
	}()
	must(f.SeedDomains())
	_, err = f.ScheduleProbes(5) // warm the define/start path before timing
	must(err)
	// Flush the garbage the bring-up left behind (seeding churns XML and
	// RPC buffers for every domain in the fleet) so collection pauses
	// triggered by earlier work don't land inside the probe window.
	runtime.GC()
	lats, err := f.ScheduleProbes(probes)
	must(err)
	var planMoves int
	plan := median(5, func() {
		mv, _, _, _ := fleet.PlanRebalance(f.Reg.Inventory(), fleet.RebalanceOptions{
			SkewThreshold: 0.05, MaxMigrations: 64,
		})
		planMoves = len(mv)
	})
	sums := perOp(200, func() {
		if len(f.Reg.Summaries()) != hosts {
			must(fmt.Errorf("bad summary count"))
		}
	})
	return scaleStats{
		Hosts: hosts, Domains: f.Domains(),
		SettleNs: int64(f.SettleTime), SeedNs: int64(f.SeedTime),
		SchedP50Ns: int64(scale.Percentile(lats, 50)), SchedP99Ns: int64(scale.Percentile(lats, 99)),
		PlanNs: int64(plan), PlanMoves: planMoves,
		SummariesNs: int64(sums), RegistryBytes: f.RegistryBytes(),
	}
}

// t8Tiers picks the fleet sizes for the T8 curve. The 1,000-host tier
// (100k domains) takes tens of seconds; it is always in bench.sh runs
// (GOVIRT_T8_FULL is exported there) and skippable for a quick look.
func t8Tiers() []int {
	if os.Getenv("GOVIRT_T8_SKIP_FULL") != "" {
		return []int{10, 100}
	}
	return []int{10, 100, 1000}
}

func tableT8() {
	header("Table T8", "mega-fleet scale: N in-process daemons over memory transports",
		fmt.Sprintf("%-7s %-9s %-10s %-10s %-12s %-12s %-12s %-7s %-9s",
			"hosts", "domains", "settle", "seed", "sched p50", "sched p99", "plan", "moves", "reg MiB"))
	for _, hosts := range t8Tiers() {
		st := benchScale(hosts, 100, 200)
		fmt.Printf("%-7d %-9d %-10s %-10s %-12s %-12s %-12s %-7d %-9.1f\n",
			st.Hosts, st.Domains,
			time.Duration(st.SettleNs).Round(time.Millisecond),
			time.Duration(st.SeedNs).Round(time.Millisecond),
			time.Duration(st.SchedP50Ns).Round(time.Microsecond),
			time.Duration(st.SchedP99Ns).Round(time.Microsecond),
			time.Duration(st.PlanNs).Round(time.Microsecond),
			st.PlanMoves, float64(st.RegistryBytes)/(1<<20))
	}
}

// watchStats is one mode of the T10 watch-propagation measurement: a
// 64-host fleet whose domains are toggled through a lifecycle change,
// timing daemon-side change → registry summary update, plus the sweep
// rate of the same fleet fully quiesced.
type watchStats struct {
	Mode             string
	Hosts            int
	PropP50Ns        int64
	PropP99Ns        int64
	SweepsPerOp      float64
	IdleSweepsPerSec float64
	WatchEvents      uint64
	Resyncs          uint64
}

func benchWatch(mode string, disableWatch bool, poll time.Duration, samples int) watchStats {
	core.ResetRegistryForTest()
	drvtest.Register(quiet)
	remote.Register()
	const hosts = 64
	f, err := scale.Launch(scale.Options{
		Hosts:          hosts,
		DomainsPerHost: 10,
		PollInterval:   poll,
		DisableWatch:   disableWatch,
		Log:            quiet,
	})
	must(err)
	defer func() {
		f.Close()
		core.ResetRegistryForTest()
	}()
	must(f.SeedDomains())
	host := f.Names[0]
	conn, err := f.Reg.Host(host)
	must(err)
	dom, err := conn.LookupDomain("d0000-0000")
	must(err)
	active := func() int {
		for _, s := range f.Reg.Summaries() {
			if s.Host == host {
				return s.ActiveDomains
			}
		}
		return -1
	}
	waitActive := func(want int) time.Duration {
		t0 := time.Now()
		for active() != want {
			if time.Since(t0) > 30*time.Second {
				must(fmt.Errorf("summary stuck at %d active, want %d", active(), want))
			}
			time.Sleep(100 * time.Microsecond)
		}
		return time.Since(t0)
	}
	time.Sleep(300 * time.Millisecond) // drain seeding events and owed turns
	base := active()

	st0 := f.Reg.WatchStats()
	lats := make([]time.Duration, 0, samples)
	for i := 0; i < samples; i++ {
		must(dom.Destroy())
		lats = append(lats, waitActive(base-1))
		must(dom.Create())
		waitActive(base)
	}
	st1 := f.Reg.WatchStats()

	const window = 500 * time.Millisecond
	idle0 := f.Reg.WatchStats()
	time.Sleep(window)
	idle1 := f.Reg.WatchStats()

	return watchStats{
		Mode: mode, Hosts: hosts,
		PropP50Ns:        int64(scale.Percentile(lats, 50)),
		PropP99Ns:        int64(scale.Percentile(lats, 99)),
		SweepsPerOp:      float64(st1.Sweeps-st0.Sweeps) / float64(samples),
		IdleSweepsPerSec: float64(idle1.Sweeps-idle0.Sweeps) / window.Seconds(),
		WatchEvents:      st1.WatchEvents - st0.WatchEvents,
		Resyncs:          st1.Resyncs,
	}
}

// t10Rows runs both T10 modes: the watch-stream reconcile loop with
// polling effectively off, and the legacy poke-and-sweep baseline.
func t10Rows() []watchStats {
	return []watchStats{
		benchWatch("watch", false, time.Hour, 30),
		benchWatch("poll-100ms", true, 100*time.Millisecond, 30),
	}
}

func tableT10() {
	header("Table T10", "watch-stream propagation: event push vs legacy poke-and-sweep (64 hosts)",
		fmt.Sprintf("%-12s %-12s %-12s %-11s %-14s %-8s %-8s",
			"mode", "prop p50", "prop p99", "sweeps/op", "idle sweeps/s", "events", "resyncs"))
	for _, st := range t10Rows() {
		fmt.Printf("%-12s %-12s %-12s %-11.2f %-14.1f %-8d %-8d\n",
			st.Mode,
			time.Duration(st.PropP50Ns).Round(10*time.Microsecond),
			time.Duration(st.PropP99Ns).Round(10*time.Microsecond),
			st.SweepsPerOp, st.IdleSweepsPerSec, st.WatchEvents, st.Resyncs)
	}
}

// qosStats is the T11 measurement: the admission-control tax on the
// authenticated unix fast path, and tenant isolation under a flooding
// neighbor.
type qosStats struct {
	OffNs, OnNs           int64
	OffAllocs, OnAllocs   int64
	AloneP50Ns, AloneP99Ns int64
	FloodP50Ns, FloodP99Ns int64
	FloodSent, FloodRejected uint64
}

// qosDaemon brings up a daemon whose unix listener requires SASL, with
// the given class specs installed (none = admission control off).
func qosDaemon(specs []string, watermark int) (mk func(user, pass, extra string) string, cleanup func()) {
	core.ResetRegistryForTest()
	drvtest.Register(quiet)
	remote.Register()
	d := daemon.New(quiet)
	srv, err := d.AddServer("govirtd", 2, 8, 2, daemon.ClientLimits{MaxClients: 64})
	must(err)
	srv.AddProgram(daemon.NewRemoteProgram(srv))
	srv.SetCredentials(map[string]string{"bench": "pw", "good": "gx", "noisy": "nx"})
	if len(specs) > 0 {
		classes, err := qos.ParseClasses(specs)
		must(err)
		srv.SetQoS(qos.NewEngine(qos.Config{Classes: classes, ShedWatermark: watermark}))
	}
	dir, err := os.MkdirTemp("", "benchreport-qos")
	must(err)
	sock := filepath.Join(dir, "q.sock")
	must(srv.ListenUnix(sock, daemon.ServiceConfig{AuthSASL: true}))
	esc := strings.ReplaceAll(sock, "/", "%2F")
	return func(user, pass, extra string) string {
			return fmt.Sprintf("test+unix://%s@/default?socket=%s&password=%s%s", user, esc, pass, extra)
		}, func() {
			d.Shutdown()
			os.RemoveAll(dir)
			core.ResetRegistryForTest()
		}
}

func benchQoS() qosStats {
	var st qosStats
	// Fast-path tax: the T6 op mix with no engine vs QoS enabled but
	// unthrottled.
	fastpath := func(specs []string) (int64, int64) {
		mk, cleanup := qosDaemon(specs, 0)
		defer cleanup()
		conn, err := core.Open(mk("bench", "pw", ""))
		must(err)
		defer conn.Close()
		dom, err := conn.LookupDomain("test")
		must(err)
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := conn.Hostname(); err != nil {
					b.Fatal(err)
				}
				if _, err := dom.Info(); err != nil {
					b.Fatal(err)
				}
			}
		})
		return res.NsPerOp(), res.AllocsPerOp()
	}
	st.OffNs, st.OffAllocs = fastpath(nil)
	st.OnNs, st.OnAllocs = fastpath([]string{
		"gold rate_limit_calls_per_s=100000000 burst=100000000 priority=7 users=bench",
	})

	// Noisy neighbor: a well-behaved tenant's latency distribution alone
	// vs with a flooding tenant being rejected on the same daemon.
	specs := []string{
		"silver rate_limit_calls_per_s=100000000 burst=100000000 priority=7 users=good",
		"bronze rate_limit_calls_per_s=50 burst=10 priority=2 users=noisy",
	}
	probe := func(flooded bool) (int64, int64) {
		mk, cleanup := qosDaemon(specs, 64)
		defer cleanup()
		conn, err := core.Open(mk("good", "gx", ""))
		must(err)
		defer conn.Close()
		var stop chan struct{}
		var done sync.WaitGroup
		if flooded {
			noisy, err := core.Open(mk("noisy", "nx", "&overload_retry_ms=0"))
			must(err)
			defer noisy.Close()
			stop = make(chan struct{})
			done.Add(1)
			go func() {
				defer done.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					st.FloodSent++
					if _, err := noisy.Hostname(); err != nil {
						st.FloodRejected++
					}
					time.Sleep(time.Millisecond)
				}
			}()
		}
		const samples = 2000
		lats := make([]time.Duration, 0, samples)
		for i := 0; i < samples; i++ {
			t0 := time.Now()
			_, err := conn.Hostname()
			must(err)
			lats = append(lats, time.Since(t0))
		}
		if stop != nil {
			close(stop)
			done.Wait()
		}
		return int64(scale.Percentile(lats, 50)), int64(scale.Percentile(lats, 99))
	}
	st.AloneP50Ns, st.AloneP99Ns = probe(false)
	st.FloodP50Ns, st.FloodP99Ns = probe(true)
	return st
}

func tableT11() {
	header("Table T11", "multi-tenant QoS: admission tax on the fast path, noisy-neighbor isolation",
		fmt.Sprintf("%-26s %-16s %-16s %-12s", "case", "baseline", "with QoS", "delta"))
	st := benchQoS()
	fmt.Printf("%-26s %-16s %-16s %-12s\n", "fastpath/op-mix",
		time.Duration(st.OffNs), time.Duration(st.OnNs),
		fmt.Sprintf("%+.1f%%", 100*float64(st.OnNs-st.OffNs)/float64(st.OffNs)))
	fmt.Printf("%-26s %-16d %-16d %-12d\n", "fastpath/allocs-op",
		st.OffAllocs, st.OnAllocs, st.OnAllocs-st.OffAllocs)
	fmt.Printf("%-26s %-16s %-16s %-12s\n", "good-tenant/p50 (flood)",
		time.Duration(st.AloneP50Ns), time.Duration(st.FloodP50Ns),
		fmt.Sprintf("%+.1f%%", 100*float64(st.FloodP50Ns-st.AloneP50Ns)/float64(st.AloneP50Ns)))
	fmt.Printf("%-26s %-16s %-16s %-12s\n", "good-tenant/p99 (flood)",
		time.Duration(st.AloneP99Ns), time.Duration(st.FloodP99Ns),
		fmt.Sprintf("%+.1f%%", 100*float64(st.FloodP99Ns-st.AloneP99Ns)/float64(st.AloneP99Ns)))
	fmt.Printf("flooder: %d calls sent, %d rejected with typed overload errors\n",
		st.FloodSent, st.FloodRejected)
}

// t12Row is one cell of the migration-pipeline sweep (Table T12).
type t12Row struct {
	Dirty   uint64
	Streams int
	Mode    string
	Res     migrate.Result
}

// t12Rows sweeps the migration pipeline model: a calm and a hot dirty
// rate, across stream counts, in all three modes. The hot rate is
// chosen so single-stream pre-copy cannot converge on the link.
func t12Rows() []t12Row {
	const memKiB = 1024 * 1024 // 1 GiB guest
	rows := make([]t12Row, 0, 24)
	for _, dirty := range []uint64{10_000, 300_000} {
		for _, streams := range []int{1, 2, 4, 8} {
			for _, mode := range []string{"precopy", "autoconverge", "postcopy"} {
				opts := core.MigrateOptions{
					BandwidthMBps: 1000, MaxDowntimeMs: 300, ParallelStreams: streams,
				}
				switch mode {
				case "autoconverge":
					opts.AutoConverge = true
				case "postcopy":
					opts.PostCopy = true
				}
				res, err := migrate.Estimate(
					migrate.Workload{MemKiB: memKiB, DirtyPagesSec: dirty}, opts)
				must(err)
				rows = append(rows, t12Row{Dirty: dirty, Streams: streams, Mode: mode, Res: res})
			}
		}
	}
	return rows
}

func tableT12() {
	header("Table T12", "live-migration pipeline: dirty rate × streams × mode (1 GiB guest, 1000 MB/s link)",
		fmt.Sprintf("%-14s %-8s %-13s %-7s %-12s %-12s %-10s %-9s %s",
			"dirty pg/s", "streams", "mode", "iters", "total", "downtime", "converged", "throttle", "faults"))
	for _, r := range t12Rows() {
		fmt.Printf("%-14d %-8d %-13s %-7d %-12s %-12s %-10v %-9d %d\n",
			r.Dirty, r.Streams, r.Mode, r.Res.Iterations,
			fmt.Sprintf("%.0f ms", r.Res.TotalTimeMs()),
			fmt.Sprintf("%.1f ms", r.Res.DowntimeMs()),
			r.Res.Converged, r.Res.ThrottleSteps, r.Res.PostCopyFaults)
	}
}

// emitJSON prints the fast-path metrics as JSON for scripts/bench.sh.
func emitJSON() {
	mar, unm := benchCodec()
	single, singles, bulk := benchSweep()
	scrapes := []scrapeStats{benchScrape(100), benchScrape(1000), benchScrape(10000)}
	scrapeOut := make([]map[string]interface{}, 0, len(scrapes))
	for _, s := range scrapes {
		scrapeOut = append(scrapeOut, map[string]interface{}{
			"domains":         s.Domains,
			"sweep_ns":        s.SweepNs,
			"sweep_allocs":    s.SweepAllocs,
			"cached_ns":       s.CachedNs,
			"cached_allocs":   s.CachedAllocs,
			"exposition_size": s.Bytes,
		})
	}
	scaleOut := make([]map[string]interface{}, 0, 3)
	for _, hosts := range t8Tiers() {
		st := benchScale(hosts, 100, 200)
		scaleOut = append(scaleOut, map[string]interface{}{
			"hosts":           st.Hosts,
			"domains":         st.Domains,
			"settle_ns":       st.SettleNs,
			"seed_ns":         st.SeedNs,
			"schedule_p50_ns": st.SchedP50Ns,
			"schedule_p99_ns": st.SchedP99Ns,
			"plan_ns":         st.PlanNs,
			"plan_moves":      st.PlanMoves,
			"summaries_ns":    st.SummariesNs,
			"registry_bytes":  st.RegistryBytes,
		})
	}
	watchOut := make([]map[string]interface{}, 0, 2)
	for _, st := range t10Rows() {
		watchOut = append(watchOut, map[string]interface{}{
			"mode":                st.Mode,
			"hosts":               st.Hosts,
			"prop_p50_ns":         st.PropP50Ns,
			"prop_p99_ns":         st.PropP99Ns,
			"sweeps_per_op":       st.SweepsPerOp,
			"idle_sweeps_per_sec": st.IdleSweepsPerSec,
			"watch_events":        st.WatchEvents,
			"resyncs":             st.Resyncs,
		})
	}
	migOut := make([]map[string]interface{}, 0, 24)
	for _, r := range t12Rows() {
		migOut = append(migOut, map[string]interface{}{
			"dirty_pages_sec": r.Dirty,
			"streams":         r.Streams,
			"mode":            r.Mode,
			"iterations":      r.Res.Iterations,
			"total_ns":        r.Res.TotalTimeNs,
			"downtime_ns":     r.Res.DowntimeNs,
			"converged":       r.Res.Converged,
			"throttle_steps":  r.Res.ThrottleSteps,
			"postcopy_faults": r.Res.PostCopyFaults,
		})
	}
	qst := benchQoS()
	out := map[string]interface{}{
		"schema": "benchreport/v6",
		"codec": map[string]interface{}{
			"marshal_64rows":   mar,
			"unmarshal_64rows": unm,
		},
		"sweep_unix_64domains": map[string]interface{}{
			"single_dominfo_ns":    single.Nanoseconds(),
			"singles_loop_ns":      singles.Nanoseconds(),
			"bulk_ns":              bulk.Nanoseconds(),
			"bulk_vs_single":       float64(bulk) / float64(single),
			"bulk_vs_singles_gain": float64(singles) / float64(bulk),
		},
		"domain_scrape":     scrapeOut,
		"fleet_scale":       scaleOut,
		"watch_propagation": watchOut,
		"migration":         migOut,
		"qos_overhead": map[string]interface{}{
			"fastpath_off_ns":     qst.OffNs,
			"fastpath_on_ns":      qst.OnNs,
			"fastpath_off_allocs": qst.OffAllocs,
			"fastpath_on_allocs":  qst.OnAllocs,
			"overhead_frac":       float64(qst.OnNs-qst.OffNs) / float64(qst.OffNs),
			"good_p50_alone_ns":   qst.AloneP50Ns,
			"good_p99_alone_ns":   qst.AloneP99Ns,
			"good_p50_flooded_ns": qst.FloodP50Ns,
			"good_p99_flooded_ns": qst.FloodP99Ns,
			"flood_sent":          qst.FloodSent,
			"flood_rejected":      qst.FloodRejected,
		},
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	must(enc.Encode(out))
}

// trajectory merges every BENCH_*.json in the repo root into one table,
// one row per recorded run, so the performance history reads as a
// curve across PRs rather than a single latest snapshot. Older schema
// versions simply leave their missing columns blank.
func trajectory() {
	files, err := filepath.Glob("BENCH_*.json")
	must(err)
	sort.Strings(files)
	if len(files) == 0 {
		fmt.Println("no BENCH_*.json files found")
		return
	}
	header("Trajectory", "headline fast-path metrics across recorded benchmark runs",
		fmt.Sprintf("%-14s %-14s %-12s %-12s %-14s %-14s %-12s %-12s",
			"run", "schema", "marshal", "bulk sweep", "scrape 10k", "sched p99*", "plan*", "watch p99"))
	fmt.Println("(* largest fleet_scale tier in the file)")
	for _, file := range files {
		raw, err := os.ReadFile(file)
		must(err)
		var doc map[string]interface{}
		if err := json.Unmarshal(raw, &doc); err != nil {
			fmt.Printf("%-14s unreadable: %v\n", file, err)
			continue
		}
		schema, _ := doc["schema"].(string)
		schema = strings.TrimPrefix(schema, "benchreport/")
		marshal := jsonDur(jsonDig(doc, "codec", "marshal_64rows", "CompiledNs"))
		bulk := jsonDur(jsonDig(doc, "sweep_unix_64domains", "bulk_ns"))
		scrape := jsonDur(jsonRowField(doc["domain_scrape"], "domains", 10000, "sweep_ns"))
		tier := jsonMaxRow(doc["fleet_scale"], "hosts")
		sched, plan := "-", "-"
		if tier != nil {
			sched = jsonDur(tier["schedule_p99_ns"])
			plan = jsonDur(tier["plan_ns"])
		}
		watchP99 := jsonDur(jsonRowStrField(doc["watch_propagation"], "mode", "watch", "prop_p99_ns"))
		fmt.Printf("%-14s %-14s %-12s %-12s %-14s %-14s %-12s %-12s\n",
			strings.TrimSuffix(file, ".json"), schema, marshal, bulk, scrape, sched, plan, watchP99)
	}
}

// jsonDig walks nested JSON objects by key, returning nil when any
// level is missing.
func jsonDig(doc map[string]interface{}, keys ...string) interface{} {
	var cur interface{} = doc
	for _, k := range keys {
		m, ok := cur.(map[string]interface{})
		if !ok {
			return nil
		}
		cur = m[k]
	}
	return cur
}

// jsonRowStrField finds the array element whose string key equals want
// and returns its field, or nil.
func jsonRowStrField(arr interface{}, key, want, field string) interface{} {
	rows, ok := arr.([]interface{})
	if !ok {
		return nil
	}
	for _, r := range rows {
		if m, ok := r.(map[string]interface{}); ok {
			if v, _ := m[key].(string); v == want {
				return m[field]
			}
		}
	}
	return nil
}

// jsonRowField finds the array element whose key equals want and
// returns its field, or nil.
func jsonRowField(arr interface{}, key string, want float64, field string) interface{} {
	rows, ok := arr.([]interface{})
	if !ok {
		return nil
	}
	for _, r := range rows {
		if m, ok := r.(map[string]interface{}); ok {
			if v, _ := m[key].(float64); v == want {
				return m[field]
			}
		}
	}
	return nil
}

// jsonMaxRow returns the array element with the largest numeric key, or
// nil for missing/empty arrays.
func jsonMaxRow(arr interface{}, key string) map[string]interface{} {
	rows, ok := arr.([]interface{})
	if !ok {
		return nil
	}
	var best map[string]interface{}
	bestV := -1.0
	for _, r := range rows {
		if m, ok := r.(map[string]interface{}); ok {
			if v, _ := m[key].(float64); v > bestV {
				best, bestV = m, v
			}
		}
	}
	return best
}

// jsonDur renders a JSON ns number as a rounded duration, "-" if absent.
func jsonDur(v interface{}) string {
	f, ok := v.(float64)
	if !ok {
		return "-"
	}
	return time.Duration(int64(f)).Round(100 * time.Nanosecond).String()
}

func benchDaemonOn(transport string, d *daemon.Daemon) (*core.Connect, func()) {
	core.ResetRegistryForTest()
	drvtest.Register(quiet)
	remote.Register()
	srv, err := d.AddServer("govirtd", 2, 8, 2, daemon.ClientLimits{MaxClients: 64})
	must(err)
	srv.AddProgram(daemon.NewRemoteProgram(srv))
	var uriStr string
	switch transport {
	case "unix":
		dir, err := os.MkdirTemp("", "benchreport")
		must(err)
		sock := filepath.Join(dir, "b.sock")
		must(srv.ListenUnix(sock, daemon.ServiceConfig{}))
		uriStr = "test+unix:///default?socket=" + strings.ReplaceAll(sock, "/", "%2F")
	case "tcp":
		addr, err := srv.ListenTCP("127.0.0.1:0", daemon.ServiceConfig{Transport: daemon.TransportTCP})
		must(err)
		host, port, _ := strings.Cut(addr, ":")
		uriStr = fmt.Sprintf("test+tcp://%s:%s/default", host, port)
	}
	conn, err := core.Open(uriStr)
	must(err)
	return conn, func() {
		conn.Close()
		d.Shutdown()
		core.ResetRegistryForTest()
	}
}

func tableT3() {
	header("Table T3", "lifecycle timings per driver (modelled guest latency, mgmt overhead)",
		fmt.Sprintf("%-8s %-16s %-16s %-16s", "driver", "boot(sim)", "shutdown(sim)", "mgmt ns/cycle"))
	for _, driver := range []string{"qsim", "xsim", "csim"} {
		drv := openDriver(driver)
		_, err := drv.DefineDomain(domainXML(driver, "vm"))
		must(err)
		ma := drv.(core.MachineAccess)

		must(drv.CreateDomain("vm"))
		m, err := ma.Machine("vm")
		must(err)
		boot := m.Stats().SimTimeNs
		before := m.Stats().SimTimeNs
		_ = before
		must(drv.ShutdownDomain("vm"))

		mgmt := perOp(200, func() {
			drv.CreateDomain("vm")  //nolint:errcheck
			drv.DestroyDomain("vm") //nolint:errcheck
		})
		// Shutdown sim time: measure one graceful cycle.
		must(drv.CreateDomain("vm"))
		m2, err := ma.Machine("vm")
		must(err)
		preShut := m2.Stats().SimTimeNs
		must(drv.ShutdownDomain("vm"))
		shutdownSim := m2.Stats().SimTimeNs - preShut

		fmt.Printf("%-8s %-16s %-16s %-16s\n", driver,
			fmt.Sprintf("%.0f ms", float64(boot)/1e6),
			fmt.Sprintf("%.0f ms", float64(shutdownSim)/1e6),
			mgmt)
	}
}

func tableT4() {
	header("Table T4", "non-intrusive monitoring cost per fleet poll",
		fmt.Sprintf("%-10s %-16s %-16s", "domains", "per-poll", "per-domain"))
	for _, fleet := range []int{10, 100, 1000} {
		drv := openDriver("test")
		for i := 0; i < fleet; i++ {
			must(defStart(drv, "test", fmt.Sprintf("vm%04d", i)))
		}
		names, err := drv.ListDomains(core.ListActive)
		must(err)
		poll := perOp(20, func() {
			for _, n := range names {
				drv.DomainStats(n) //nolint:errcheck
			}
		})
		fmt.Printf("%-10d %-16s %-16s\n", fleet, poll, poll/time.Duration(fleet))
	}
}

func tableT5() {
	header("Table T5", "admin-plane operation latency (unix socket)",
		fmt.Sprintf("%-24s %-14s", "operation", "latency"))
	d := daemon.New(quiet)
	srv, err := d.AddServer("govirtd", 2, 8, 2, daemon.ClientLimits{MaxClients: 64})
	must(err)
	srv.AddProgram(daemon.NewRemoteProgram(srv))
	adm, err := d.AddServer("admin", 1, 2, 1, daemon.ClientLimits{MaxClients: 8})
	must(err)
	adm.AddProgram(admin.NewProgram(d))
	dir, err := os.MkdirTemp("", "benchreport")
	must(err)
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "a.sock")
	must(adm.ListenUnix(sock, daemon.ServiceConfig{}))
	conn, err := admin.Open(sock)
	must(err)
	defer d.Shutdown()
	defer conn.Close()

	set := typedparams.NewList()
	set.AddUInt(admin.FieldMaxWorkers, 8) //nolint:errcheck
	rows := []struct {
		name string
		fn   func()
	}{
		{"srv-list", func() { conn.ListServers() }},                                 //nolint:errcheck
		{"srv-threadpool-info", func() { conn.ThreadpoolParams("govirtd") }},        //nolint:errcheck
		{"srv-threadpool-set", func() { conn.SetThreadpoolParams("govirtd", set) }}, //nolint:errcheck
		{"srv-clients-info", func() { conn.ClientLimits("govirtd") }},               //nolint:errcheck
		{"client-list", func() { conn.ListClients("admin") }},                       //nolint:errcheck
		{"dmn-log-define", func() { conn.SetLoggingFilters("3:rpc 1:driver") }},     //nolint:errcheck
	}
	for _, r := range rows {
		fmt.Printf("%-24s %-14s\n", r.name, perOp(500, r.fn))
	}
}

// tableT6 uses telemetry.Snapshot to split the unix round trip into its
// internal stages: workerpool queue wait, server-side dispatch, and the
// client-observed total (which adds wire encode/decode and scheduling).
func tableT6() {
	header("Table T6", "telemetry breakdown of the unix round trip (queue wait / dispatch / total)",
		fmt.Sprintf("%-16s %-12s %-14s %-14s %-14s", "operation", "calls", "queue p50", "dispatch p50", "client total"))

	reg := telemetry.NewRegistry()
	conn, shutdown := benchDaemonOn("unix", daemon.NewWithTelemetry(quiet, reg))
	defer shutdown()
	dom, err := conn.LookupDomain("test")
	must(err)

	hostname := perOp(500, func() { conn.Hostname() }) //nolint:errcheck
	dominfo := perOp(500, func() { dom.Info() })       //nolint:errcheck

	snap := reg.Snapshot()
	histo := func(name string) telemetry.HistogramSnapshot {
		for _, h := range snap.Histograms {
			if h.Name == name {
				return h
			}
		}
		return telemetry.HistogramSnapshot{}
	}
	queue := histo(`daemon_queue_wait_seconds{server="govirtd"}`)
	rows := []struct {
		op     string
		proc   string
		client time.Duration
	}{
		{"hostname", "GetHostname", hostname},
		{"dominfo", "DomainGetInfo", dominfo},
	}
	for _, r := range rows {
		disp := histo(fmt.Sprintf("daemon_dispatch_seconds{program=%q,proc=%q}", "remote", r.proc))
		fmt.Printf("%-16s %-12d %-14s %-14s %-14s\n", r.op, disp.Count,
			time.Duration(queue.P50Ns), time.Duration(disp.P50Ns), r.client)
	}
}

func figureF1() {
	header("Figure F1", "list/lookup latency vs number of defined domains",
		fmt.Sprintf("%-10s %-16s %-16s", "domains", "list", "lookup"))
	for _, count := range []int{10, 100, 1000, 10000} {
		drv := openDriver("test")
		for i := 0; i < count; i++ {
			_, err := drv.DefineDomain(domainXML("test", fmt.Sprintf("vm%05d", i)))
			must(err)
		}
		iters := 2000 / count
		if iters < 3 {
			iters = 3
		}
		list := perOp(iters, func() { drv.ListDomains(0) }) //nolint:errcheck
		target := fmt.Sprintf("vm%05d", count/2)
		lookup := perOp(2000, func() { drv.LookupDomain(target) }) //nolint:errcheck
		fmt.Printf("%-10d %-16s %-16s\n", count, list, lookup)
	}
}

func figureF2() {
	header("Figure F2", "request throughput vs workerpool size (100µs hypervisor wait per job)",
		fmt.Sprintf("%-10s %-16s %-12s", "workers", "jobs/sec", "speedup"))
	const jobs = 2000
	var base float64
	for _, workers := range []int{1, 2, 4, 8, 16} {
		pool, err := daemon.NewWorkerpool(workers, workers, 0)
		must(err)
		elapsed := median(3, func() {
			var wg sync.WaitGroup
			wg.Add(jobs)
			for i := 0; i < jobs; i++ {
				pool.Submit(func() { //nolint:errcheck
					workUnit()
					wg.Done()
				}, false)
			}
			wg.Wait()
		})
		pool.Shutdown()
		rate := float64(jobs) / elapsed.Seconds()
		if base == 0 {
			base = rate
		}
		fmt.Printf("%-10d %-16.0f %.2fx\n", workers, rate, rate/base)
	}
}

// workUnit models one request's service time: daemon workers spend most
// of a request waiting on the hypervisor, so the cost is a wait, not
// CPU — which is exactly why additional workers raise throughput.
func workUnit() {
	time.Sleep(100 * time.Microsecond)
}

func figureF3() {
	header("Figure F3", "live migration: total time & downtime vs memory × dirty rate (1000 MB/s link)",
		fmt.Sprintf("%-10s %-14s %-7s %-14s %-14s %s", "mem", "dirty pg/s", "iters", "total", "downtime", "converged"))
	for _, memGiB := range []uint64{1, 4, 16} {
		for _, dirty := range []uint64{1_000, 100_000, 1_000_000} {
			res, err := migrate.Estimate(migrate.Workload{MemKiB: memGiB * 1024 * 1024, DirtyPagesSec: dirty},
				core.MigrateOptions{BandwidthMBps: 1000, MaxDowntimeMs: 300, MaxIterations: 30})
			must(err)
			fmt.Printf("%-10s %-14d %-7d %-14s %-14s %v\n",
				fmt.Sprintf("%d GiB", memGiB), dirty, res.Iterations,
				fmt.Sprintf("%.0f ms", res.TotalTimeMs()),
				fmt.Sprintf("%.1f ms", res.DowntimeMs()),
				res.Converged)
		}
	}
}

func figureF4() {
	header("Figure F4", "XDR serialization throughput by payload",
		fmt.Sprintf("%-12s %-14s %-14s", "payload", "marshal", "unmarshal"))
	run := func(name string, v interface{}, mk func() interface{}) {
		data, err := rpc.Marshal(v)
		must(err)
		m := perOp(5000, func() { rpc.Marshal(v) })            //nolint:errcheck
		u := perOp(5000, func() { rpc.Unmarshal(data, mk()) }) //nolint:errcheck
		fmt.Printf("%-12s %-14s %-14s\n", name, m, u)
	}
	type small struct {
		A uint32
		B uint64
		S string
	}
	run("small", &small{1, 2, "domain"}, func() interface{} { return &small{} })
	run("xml-4KiB", &struct{ X string }{strings.Repeat("<x/>", 1024)},
		func() interface{} { return &struct{ X string }{} })
	run("xml-64KiB", &struct{ X string }{strings.Repeat("<x/>", 16384)},
		func() interface{} { return &struct{ X string }{} })
}

func ablationA3() {
	header("Ablation A3", "xsim hypercall batching: privilege transitions per shutdown cycle",
		fmt.Sprintf("%-12s %-18s %-12s", "mode", "hypercalls/cycle", "saved/cycle"))
	for _, batch := range []bool{true, false} {
		node, _ := nodeinfo.NewNode("n", nodeinfo.ProfileServer)
		hv := xsim.New(node)
		drv := xen.NewOn(hv, node, batch, quiet)
		_, err := drv.DefineDomain(domainXML("xsim", "vm"))
		must(err)
		const cycles = 200
		for i := 0; i < cycles; i++ {
			must(drv.CreateDomain("vm"))
			must(drv.ShutdownDomain("vm"))
		}
		served, saved := hv.HypercallCount()
		mode := "batched"
		if !batch {
			mode = "unbatched"
		}
		fmt.Printf("%-12s %-18.2f %-12.2f\n", mode,
			float64(served)/cycles, float64(saved)/cycles)
	}
}

// synthFleetInv builds a synthetic fleet snapshot (server-profile hosts
// with a sawtooth of existing load) for the pure scheduler and planner
// measurements.
func synthFleetInv(hosts int) []fleet.HostInventory {
	invs := make([]fleet.HostInventory, 0, hosts)
	for i := 0; i < hosts; i++ {
		inv := fleet.HostInventory{
			Host: fmt.Sprintf("host%04d", i), State: fleet.HostUp, DriverType: "test",
			Node: core.NodeInfo{MemoryKiB: 256 * 1024 * 1024, CPUs: 64},
		}
		for j := 0; j < i%8; j++ {
			inv.Domains = append(inv.Domains, fleet.DomainRecord{
				Name: fmt.Sprintf("vm%04d-%d", i, j), State: core.DomainRunning,
				MemKiB: 8 * 1024 * 1024, VCPUs: 4,
			})
		}
		invs = append(invs, inv)
	}
	return invs
}

// benchFleet brings up n in-process daemons and a registry over them.
func benchFleet(n int) (*fleet.Registry, func()) {
	core.ResetRegistryForTest()
	drvtest.Register(quiet)
	remote.Register()
	dir, err := os.MkdirTemp("", "benchreport")
	must(err)
	var uris []string
	var daemons []*daemon.Daemon
	for i := 0; i < n; i++ {
		d := daemon.New(quiet)
		srv, err := d.AddServer("govirtd", 2, 8, 2, daemon.ClientLimits{MaxClients: 64})
		must(err)
		srv.AddProgram(daemon.NewRemoteProgram(srv))
		sock := filepath.Join(dir, fmt.Sprintf("node%d.sock", i))
		must(srv.ListenUnix(sock, daemon.ServiceConfig{}))
		daemons = append(daemons, d)
		uris = append(uris, "test+unix:///empty?socket="+strings.ReplaceAll(sock, "/", "%2F"))
	}
	reg, err := fleet.New(fleet.Config{Hosts: uris, PollInterval: time.Second, Log: quiet})
	must(err)
	reg.Start()
	if up := reg.WaitSettled(5 * time.Second); up != n {
		must(fmt.Errorf("%d/%d fleet hosts up", up, n))
	}
	return reg, func() {
		reg.Close()
		for _, d := range daemons {
			d.Shutdown()
		}
		os.RemoveAll(dir)
		core.ResetRegistryForTest()
	}
}

func tableT7() {
	header("Table T7", "fleet rebalancing: planning cost and live drain migration",
		fmt.Sprintf("%-22s %-14s %-10s %-14s %-14s", "case", "wall/op", "moves", "sim total", "sim downtime"))
	for _, hosts := range []int{4, 16, 64} {
		invs := synthFleetInv(hosts)
		var moves int
		plan := perOp(200, func() {
			mv, _, _, _ := fleet.PlanRebalance(invs, fleet.RebalanceOptions{
				SkewThreshold: 0.05, MaxMigrations: 64,
			})
			moves = len(mv)
		})
		fmt.Printf("%-22s %-14s %-10d %-14s %-14s\n",
			fmt.Sprintf("plan/hosts-%d", hosts), plan, moves, "-", "-")
	}

	// Live drain: one domain ping-pongs between two daemons, a full
	// iterative pre-copy over RPC each time.
	reg, shutdown := benchFleet(2)
	defer shutdown()
	p, err := reg.Schedule(domainXML("test", "wanderer"))
	must(err)
	from := p.Host
	var simTotalNs, simDownNs, n uint64
	wall := perOp(20, func() {
		res, err := reg.Rebalance(context.Background(), fleet.RebalanceOptions{Drain: from})
		must(err)
		if len(res.Migrations) != 1 {
			must(fmt.Errorf("drain pass moved %d domains", len(res.Migrations)))
		}
		must(res.Migrations[0].Err)
		from = res.Migrations[0].To
		simTotalNs += res.Migrations[0].Result.TotalTimeNs
		simDownNs += res.Migrations[0].Result.DowntimeNs
		n++
	})
	fmt.Printf("%-22s %-14s %-10d %-14s %-14s\n", "live/drain-2hosts", wall, 1,
		fmt.Sprintf("%.0f ms", float64(simTotalNs)/float64(n)/1e6),
		fmt.Sprintf("%.1f ms", float64(simDownNs)/float64(n)/1e6))
}

func figureF5() {
	header("Figure F5", "placement scheduling latency vs fleet size and policy",
		fmt.Sprintf("%-26s %-14s", "case", "per placement"))
	req := fleet.Request{Name: "new", TypeName: "test", MemKiB: 8 * 1024 * 1024, VCPUs: 4}
	for _, hosts := range []int{10, 100, 1000} {
		invs := synthFleetInv(hosts)
		for _, pol := range []fleet.Policy{fleet.Spread(), fleet.Pack()} {
			lat := perOp(500, func() {
				if got := fleet.Rank(pol, req, invs); len(got) == 0 {
					must(fmt.Errorf("empty ranking"))
				}
			})
			fmt.Printf("%-26s %-14s\n", fmt.Sprintf("rank/%s/hosts-%d", pol.Name(), hosts), lat)
		}
	}

	// Live: the full Schedule path (rank + define/start over RPC) against
	// three daemons, with teardown to keep the fleet at steady state.
	reg, shutdown := benchFleet(3)
	defer shutdown()
	seq := 0
	lat := perOp(50, func() {
		p, err := reg.Schedule(domainXML("test", fmt.Sprintf("vm%06d", seq)))
		must(err)
		seq++
		must(p.Domain.Destroy())
		must(p.Domain.Undefine())
	})
	fmt.Printf("%-26s %-14s\n", "live/schedule-3hosts", lat)
}

// tableR1 measures crash recovery: a daemon killed and restarted over
// its state journal replays every persisted definition on driver open;
// the row is the median replay wall time per defined-domain count.
func tableR1() {
	header("Table R1", "crash recovery: journal replay time vs defined domains",
		fmt.Sprintf("%-10s %-16s %-16s", "domains", "recovery", "per-domain"))
	for _, count := range []int{10, 100, 1000} {
		root, err := os.MkdirTemp("", "benchreport-r1")
		must(err)
		common.SetStateRoot(root)
		u := &uri.URI{Driver: "test", Path: "/r1"}
		seed, err := drvtest.New(u, quiet)
		must(err)
		for i := 0; i < count; i++ {
			_, err := seed.DefineDomain(domainXML("test", fmt.Sprintf("vm%05d", i)))
			must(err)
		}
		rec := median(5, func() {
			// One recovery: a fresh driver base over the same journal.
			drv, err := drvtest.New(u, quiet)
			must(err)
			names, err := drv.ListDomains(0)
			must(err)
			if len(names) != count {
				must(fmt.Errorf("recovered %d/%d domains", len(names), count))
			}
		})
		common.SetStateRoot("")
		os.RemoveAll(root)
		fmt.Printf("%-10d %-16s %-16s\n", count, rec, rec/time.Duration(count))
	}
}

// chaosFleet is benchFleet hardened the way the chaos suite runs it:
// journal-backed daemons (distinct state scopes, so a faulted connection
// replays instead of forgetting), fast reconnect, a per-call deadline,
// and a fixed registry seed.
func chaosFleet(n int) (*fleet.Registry, func()) {
	core.ResetRegistryForTest()
	drvtest.Register(quiet)
	remote.Register()
	root, err := os.MkdirTemp("", "benchreport-r2-state")
	must(err)
	common.SetStateRoot(root)
	dir, err := os.MkdirTemp("", "benchreport-r2")
	must(err)
	var uris []string
	var daemons []*daemon.Daemon
	for i := 0; i < n; i++ {
		d := daemon.New(quiet)
		srv, err := d.AddServer("govirtd", 2, 8, 2, daemon.ClientLimits{MaxClients: 64})
		must(err)
		srv.AddProgram(daemon.NewRemoteProgram(srv))
		sock := filepath.Join(dir, fmt.Sprintf("node%d.sock", i))
		must(srv.ListenUnix(sock, daemon.ServiceConfig{}))
		daemons = append(daemons, d)
		uris = append(uris, fmt.Sprintf("test+unix:///env%d?socket=%s",
			i, strings.ReplaceAll(sock, "/", "%2F")))
	}
	reg, err := fleet.New(fleet.Config{
		Hosts:        uris,
		PollInterval: 200 * time.Millisecond,
		BackoffMin:   10 * time.Millisecond,
		BackoffMax:   100 * time.Millisecond,
		CallTimeout:  250 * time.Millisecond,
		Seed:         42,
		Log:          quiet,
	})
	must(err)
	reg.Start()
	if up := reg.WaitSettled(5 * time.Second); up != n {
		must(fmt.Errorf("%d/%d chaos-fleet hosts up", up, n))
	}
	return reg, func() {
		reg.Close()
		for _, d := range daemons {
			d.Shutdown()
		}
		common.SetStateRoot("")
		os.RemoveAll(root)
		os.RemoveAll(dir)
		core.ResetRegistryForTest()
	}
}

// tableR2 reruns the T7 drain cycle with a fraction of received RPC
// frames deterministically dropped (seed 42). Faulted passes re-settle
// the fleet and count separately; wall/pass shows the deadline-bounded
// cost of transport loss, never an unbounded hang.
func tableR2() {
	header("Table R2", "rebalance drain cycle under injected transport faults (2 daemons, seed 42)",
		fmt.Sprintf("%-12s %-10s %-14s %-12s %-12s", "recv drop", "passes", "wall/pass", "migrated", "faulted"))
	for _, prob := range []float64{0, 0.05, 0.10} {
		reg, shutdown := chaosFleet(2)
		p, err := reg.Schedule(domainXML("test", "wanderer"))
		must(err)
		from := p.Host
		if prob > 0 {
			faultpoint.Default.Set("rpc.recv", faultpoint.Spec{
				Mode: faultpoint.ModeDrop, Prob: prob,
			})
			faultpoint.Default.Arm(42)
		}
		const passes = 10
		moved, faulted := 0, 0
		start := time.Now()
		for i := 0; i < passes; i++ {
			res, err := reg.Rebalance(context.Background(), fleet.RebalanceOptions{Drain: from})
			if err != nil || len(res.Migrations) == 0 {
				faulted++
				reg.WaitSettled(5 * time.Second)
				continue
			}
			rec := res.Migrations[len(res.Migrations)-1]
			if rec.Err != nil {
				faulted++
				reg.WaitSettled(5 * time.Second)
				continue
			}
			from = rec.To
			moved++
		}
		wall := time.Since(start) / passes
		faultpoint.Default.Disarm()
		shutdown()
		fmt.Printf("%-12s %-10d %-14s %-12d %-12d\n",
			fmt.Sprintf("%.0f%%", prob*100), passes, wall, moved, faulted)
	}
}

func defStart(drv core.DriverConn, driver, name string) error {
	if _, err := drv.DefineDomain(domainXML(driver, name)); err != nil {
		return err
	}
	return drv.CreateDomain(name)
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}
