// Command virtfleetx is the fleet controller CLI: one management
// application driving a pool of govirtd daemons through the uniform
// API. It lists host health, places domains with a pluggable policy and
// rebalances load between hosts by live migration — the multi-host
// management story the underlying library exists to enable.
//
// Usage:
//
//	virtfleetx -hosts uri1,uri2[,...] <command> [args...]
//	virtfleetx -conf fleet.conf <command> [args...]
//
// Commands:
//
//	hosts                       list hosts and their health
//	status                      show per-host load and fleet skew
//	schedule <file.xml>...      place domain definitions on the fleet
//	rebalance [flags]           migrate domains to even out load
//	simulate [flags]            mega-fleet scale harness (in-process daemons)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/drivers/lxc"
	"repro/internal/drivers/qemu"
	"repro/internal/drivers/remote"
	drvtest "repro/internal/drivers/test"
	"repro/internal/drivers/xen"
	"repro/internal/fleet"
	"repro/internal/logging"
	"repro/internal/scale"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run(argv []string) error {
	fs := flag.NewFlagSet("virtfleetx", flag.ContinueOnError)
	hostsFlag := fs.String("hosts", "", "comma-separated daemon connection URIs")
	confFlag := fs.String("conf", "", "fleet.conf path (flags override it)")
	policyFlag := fs.String("policy", "", `placement policy: "spread", "pack" or "weighted"`)
	verbose := fs.Bool("v", false, "verbose logging")
	waitFlag := fs.Duration("wait", 5*time.Second, "time to wait for hosts to connect")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	args := fs.Args()
	if len(args) == 0 || args[0] == "help" {
		printHelp()
		return nil
	}

	level := logging.Warn
	if *verbose {
		level = logging.Info
	}
	log := logging.New(level)
	drvtest.Register(log)
	qemu.Register(log)
	xen.Register(log)
	lxc.Register(log)
	remote.Register()

	// simulate builds its own in-process fleet; it never touches the
	// -hosts registry bring-up below.
	if args[0] == "simulate" {
		return cmdSimulate(args[1:])
	}

	fileCfg := fleet.DefaultFileConfig()
	if *confFlag != "" {
		text, err := os.ReadFile(*confFlag)
		if err != nil {
			return err
		}
		fileCfg, err = fleet.ParseFileConfig(string(text))
		if err != nil {
			return err
		}
	}
	if *hostsFlag != "" {
		fileCfg.Hosts = strings.Split(*hostsFlag, ",")
	}
	if *policyFlag != "" {
		fileCfg.Policy = *policyFlag
	}
	cfg, err := fileCfg.RegistryConfig()
	if err != nil {
		return err
	}
	cfg.Log = log

	reg, err := fleet.New(cfg)
	if err != nil {
		return err
	}
	reg.Start()
	defer reg.Close()
	if up := reg.WaitSettled(*waitFlag); up == 0 {
		return fmt.Errorf("no fleet host is reachable")
	}

	switch args[0] {
	case "hosts":
		return cmdHosts(reg)
	case "status":
		return cmdStatus(reg)
	case "metrics":
		return cmdMetrics(reg, args[1:])
	case "schedule":
		if len(args) < 2 {
			return fmt.Errorf("schedule needs at least one XML file")
		}
		return cmdSchedule(reg, args[1:])
	case "rebalance":
		return cmdRebalance(reg, fileCfg, args[1:])
	default:
		return fmt.Errorf("unknown command %q (try \"help\")", args[0])
	}
}

func printHelp() {
	fmt.Print(`virtfleetx — multi-daemon fleet controller
usage: virtfleetx [-hosts uri1,uri2] [-conf fleet.conf] [-policy name] [-v] <command> [args...]

Commands:
  hosts                       list hosts and their health
  status                      show per-host load, domains and fleet skew
  metrics [--prom]            per-domain stats across the fleet; --prom emits
                              one Prometheus exposition with host="..." labels
  schedule <file.xml>...      place each domain definition on the best host
  rebalance [flags]           live-migrate domains to even out load
    --drain <host>            evacuate one host completely
    --skew <x>                target load spread (default from config, 0.2)
    --max <n>                 migration cap for the pass
    --concurrency <n>         parallel migrations
    --streams <n>             parallel transfer streams per migration
    --auto-converge           throttle source vCPUs if pre-copy cannot converge
    --postcopy                switch after one round, pull the rest on demand
    --dry-run                 plan only, do not migrate
  simulate [flags]            stand up an in-process mega-fleet of fake
                              daemons over memory transports and measure
                              settle, schedule and rebalance-plan times
    --hosts <n>               simulated daemons (default 100)
    --domains <n>             seeded domains per host (default 100)
    --probes <n>              schedule probes to time (default 100)
`)
}

// cmdSimulate is the scale harness entry point: it launches N real
// daemon instances inside this process, each serving the fake
// hypervisor over a memory transport, drives them through a registry
// exactly like a real fleet, and reports the scaling numbers the T8
// experiment records.
func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	hosts := fs.Int("hosts", 100, "simulated daemons")
	domains := fs.Int("domains", 100, "seeded domains per host")
	probes := fs.Int("probes", 100, "schedule probes to time")
	policy := fs.String("policy", "spread", "placement policy")
	if err := fs.Parse(args); err != nil {
		return err
	}

	fmt.Printf("Launching %d in-process daemons...\n", *hosts)
	f, err := scale.Launch(scale.Options{
		Hosts:          *hosts,
		DomainsPerHost: *domains,
		Policy:         *policy,
	})
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Printf("Fleet settled: %d hosts up in %v\n", len(f.Names), f.SettleTime.Round(time.Millisecond))

	if err := f.SeedDomains(); err != nil {
		return err
	}
	fmt.Printf("Seeded %d domains (%d/host) in %v\n",
		f.Domains(), *domains, f.SeedTime.Round(time.Millisecond))

	lats, err := f.ScheduleProbes(*probes)
	if err != nil {
		return err
	}
	fmt.Printf("Schedule: %d probes, p50 %v  p99 %v  max %v\n",
		len(lats), scale.Percentile(lats, 50), scale.Percentile(lats, 99),
		scale.Percentile(lats, 100))

	planDur, moves := f.PlanRebalance(fleet.RebalanceOptions{})
	fmt.Printf("Rebalance plan: %d move(s) in %v\n", moves, planDur.Round(time.Microsecond))
	fmt.Printf("Registry working set: %.1f MiB for %d domains on %d hosts\n",
		float64(f.RegistryBytes())/(1<<20), f.Domains(), len(f.Names))
	return nil
}

func cmdHosts(reg *fleet.Registry) error {
	fmt.Printf(" %-16s %-12s %-8s %s\n %s\n", "Name", "State", "Domains", "URI",
		strings.Repeat("-", 64))
	for _, st := range reg.Status() {
		extra := st.URI
		if st.Err != "" {
			extra += "  (" + st.Err + ")"
		}
		fmt.Printf(" %-16s %-12s %-8d %s\n", st.Name, st.State, st.Domains, extra)
	}
	return nil
}

func cmdStatus(reg *fleet.Registry) error {
	reg.RefreshNow()
	invs := reg.Inventory()
	fmt.Printf(" %-16s %-8s %-10s %-10s %-10s %-12s\n %s\n",
		"Host", "State", "Domains", "MemLoad", "CPULoad", "FreeMemMiB",
		strings.Repeat("-", 72))
	for i := range invs {
		inv := &invs[i]
		fmt.Printf(" %-16s %-8s %-10d %-10.2f %-10.2f %-12d\n",
			inv.Host, inv.State, inv.ActiveDomains(), inv.MemLoad(), inv.CPULoad(),
			inv.FreeMemKiB()/1024)
	}
	fmt.Printf("\nFleet skew (hottest - coldest load): %.3f\n", fleet.Skew(invs))
	return nil
}

// cmdMetrics is the fleet-wide aggregated scrape: every up host's
// inventory becomes one DomainRowSet tagged host="...", rendered as a
// single spec-compliant exposition (each family appears once, carrying
// all hosts' samples). The data rides the registry's existing bulk
// inventory polls — no extra per-domain round trips.
func cmdMetrics(reg *fleet.Registry, args []string) error {
	prom := false
	for _, a := range args {
		if a != "--prom" {
			return fmt.Errorf("unknown flag %q", a)
		}
		prom = true
	}
	reg.RefreshNow()
	invs := reg.Inventory()

	// Fleet inventories carry no UUIDs, so that label stays off.
	labels := telemetry.DomainLabelSet{State: true}
	sets := make([]telemetry.DomainRowSet, 0, len(invs))
	hosts := make([]string, 0, len(invs))
	for i := range invs {
		inv := &invs[i]
		if inv.State != fleet.HostUp {
			continue
		}
		rows := make([]telemetry.DomainRow, len(inv.Domains))
		for j, d := range inv.Domains {
			rows[j] = telemetry.DomainRow{
				Name: d.Name, State: d.State,
				MemKiB: d.MemKiB, MaxMemKiB: d.MaxMemKiB,
				VCPUs: d.VCPUs, CPUTimeNs: d.CPUTimeNs,
			}
		}
		sets = append(sets, telemetry.DomainRowSet{
			Extra: telemetry.Labels("host", inv.Host),
			Rows:  rows,
		})
		hosts = append(hosts, inv.Host)
	}
	if prom {
		_, err := os.Stdout.Write(telemetry.AppendDomainExposition(nil, sets, labels))
		return err
	}
	fmt.Printf(" %-16s %-24s %-12s %6s %12s %12s\n %s\n",
		"Host", "Domain", "State", "VCPUs", "Mem KiB", "CPU time",
		strings.Repeat("-", 88))
	total := 0
	for i, set := range sets {
		for _, r := range set.Rows {
			fmt.Printf(" %-16s %-24s %-12s %6d %12d %12v\n",
				hosts[i], r.Name, r.State, r.VCPUs, r.MemKiB,
				time.Duration(r.CPUTimeNs).Round(time.Millisecond))
			total++
		}
	}
	fmt.Printf("\n%d domain(s) on %d host(s)\n", total, len(sets))
	return nil
}

func cmdSchedule(reg *fleet.Registry, files []string) error {
	for _, file := range files {
		xmlDesc, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		p, err := reg.Schedule(string(xmlDesc))
		if err != nil {
			return fmt.Errorf("%s: %v", file, err)
		}
		note := ""
		if len(p.FailedHosts) > 0 {
			note = fmt.Sprintf("  (retried past %s)", strings.Join(p.FailedHosts, ", "))
		}
		fmt.Printf("Domain %s placed on %s%s\n", p.Domain.Name(), p.Host, note)
	}
	return nil
}

func cmdRebalance(reg *fleet.Registry, fileCfg fleet.FileConfig, args []string) error {
	opts := fileCfg.RebalanceConfig()
	dryRun := false
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "--drain":
			if i+1 >= len(args) {
				return fmt.Errorf("--drain needs a host name")
			}
			opts.Drain = args[i+1]
			i++
		case "--skew":
			if i+1 >= len(args) {
				return fmt.Errorf("--skew needs a value")
			}
			if _, err := fmt.Sscanf(args[i+1], "%g", &opts.SkewThreshold); err != nil {
				return fmt.Errorf("--skew: bad value %q", args[i+1])
			}
			i++
		case "--max":
			if i+1 >= len(args) {
				return fmt.Errorf("--max needs a value")
			}
			if _, err := fmt.Sscanf(args[i+1], "%d", &opts.MaxMigrations); err != nil {
				return fmt.Errorf("--max: bad value %q", args[i+1])
			}
			i++
		case "--concurrency":
			if i+1 >= len(args) {
				return fmt.Errorf("--concurrency needs a value")
			}
			if _, err := fmt.Sscanf(args[i+1], "%d", &opts.Concurrency); err != nil {
				return fmt.Errorf("--concurrency: bad value %q", args[i+1])
			}
			i++
		case "--streams":
			if i+1 >= len(args) {
				return fmt.Errorf("--streams needs a value")
			}
			if _, err := fmt.Sscanf(args[i+1], "%d", &opts.Migrate.ParallelStreams); err != nil {
				return fmt.Errorf("--streams: bad value %q", args[i+1])
			}
			i++
		case "--auto-converge":
			opts.Migrate.AutoConverge = true
		case "--postcopy":
			opts.Migrate.PostCopy = true
		case "--dry-run":
			dryRun = true
		default:
			return fmt.Errorf("unknown flag %q", args[i])
		}
	}

	if dryRun {
		reg.RefreshNow()
		moves, before, after, converged := fleet.PlanRebalance(reg.Inventory(), opts)
		fmt.Printf("Skew %.3f -> %.3f (converged: %v), %d move(s) planned:\n",
			before, after, converged, len(moves))
		for _, mv := range moves {
			fmt.Printf("  %s: %s -> %s (%d MiB)\n", mv.Domain, mv.From, mv.To, mv.MemKiB/1024)
		}
		return nil
	}

	// Ctrl-C stops scheduling new migrations; in-flight ones finish.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	opts.OnMigration = func(rec fleet.MigrationRecord) {
		if rec.Err != nil {
			fmt.Printf("  %s: %s -> %s FAILED: %v\n", rec.Domain, rec.From, rec.To, rec.Err)
			return
		}
		fmt.Printf("  %s: %s -> %s in %.1f ms (downtime %.2f ms)\n",
			rec.Domain, rec.From, rec.To, rec.Result.TotalTimeMs(), rec.Result.DowntimeMs())
	}
	res, err := reg.Rebalance(ctx, opts)
	if err != nil && len(res.Planned) == 0 {
		return err // rejected before planning (e.g. unknown drain host)
	}
	fmt.Printf("Skew %.3f -> %.3f, %d/%d migration(s) done, converged: %v\n",
		res.SkewBefore, res.SkewAfter, len(res.Migrations), len(res.Planned), res.Converged)
	return err
}
