// Command govirtd is the management daemon: it hosts the hypervisor
// drivers server-side, accepts client connections over unix and TCP
// sockets, and exposes the admin server for its own runtime management.
//
// Usage:
//
//	govirtd [-config govirtd.conf] [-sock path] [-admin-sock path] [-tcp addr:port]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/admin"
	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/drivers/common"
	"repro/internal/drivers/lxc"
	"repro/internal/drivers/qemu"
	drvtest "repro/internal/drivers/test"
	"repro/internal/drivers/xen"
	"repro/internal/faultpoint"
	"repro/internal/logging"
	"repro/internal/qos"
	"repro/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "govirtd:", err)
		os.Exit(1)
	}
}

func run() error {
	configPath := flag.String("config", "", "configuration file (govirtd.conf syntax)")
	sockOverride := flag.String("sock", "", "management unix socket path (overrides config)")
	adminSockOverride := flag.String("admin-sock", "", "admin unix socket path (overrides config)")
	tcpOverride := flag.String("tcp", "", "listen on this TCP address (overrides config)")
	flag.Parse()

	cfg := daemon.DefaultConfig()
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			return err
		}
		cfg, err = daemon.ParseConfig(string(data))
		if err != nil {
			return err
		}
	}
	if *sockOverride != "" {
		cfg.UnixSocketPath = *sockOverride
	}
	if *adminSockOverride != "" {
		cfg.AdminSocketPath = *adminSockOverride
	}

	log := logging.New(logging.Priority(cfg.LogLevel))
	if cfg.LogFilters != "" {
		if err := log.DefineFilters(cfg.LogFilters); err != nil {
			return err
		}
	}
	if cfg.LogOutputs != "" {
		if err := log.DefineOutputs(cfg.LogOutputs); err != nil {
			return err
		}
	}

	// Crash-safe persistence: every driver connection journals defined
	// objects under state_dir and replays them on open.
	if cfg.StateDir != "" {
		if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
			return fmt.Errorf("state_dir: %w", err)
		}
		common.SetStateRoot(cfg.StateDir)
		log.Infof("daemon", "state journal at %s", cfg.StateDir)
	}

	// Debug-only deterministic fault injection.
	if cfg.FaultInjection != "" {
		specs, err := faultpoint.ParseSpecs(cfg.FaultInjection)
		if err != nil {
			return err
		}
		for site, spec := range specs {
			faultpoint.Default.Set(site, spec)
		}
		faultpoint.Default.Arm(int64(cfg.FaultSeed))
		log.Warnf("daemon", "fault injection armed (seed %d): %s", cfg.FaultSeed, cfg.FaultInjection)
	}

	// Server-side drivers.
	drvtest.Register(log)
	qemu.Register(log)
	xen.Register(log)
	lxc.Register(log)

	d := daemon.New(log)
	d.Tracer().SetThreshold(time.Duration(cfg.SlowCallThresholdMs) * time.Millisecond)
	d.SetCallTimeout(time.Duration(cfg.CallTimeoutMs) * time.Millisecond)
	d.SetShutdownGrace(time.Duration(cfg.ShutdownGraceMs) * time.Millisecond)
	d.SetEventStreamConfig(cfg.EventQueueDepth, time.Duration(cfg.EventCoalesceWindowMs)*time.Millisecond)
	mgmt, err := d.AddServer("govirtd", cfg.MinWorkers, cfg.MaxWorkers, cfg.PrioWorkers,
		daemon.ClientLimits{MaxClients: cfg.MaxClients, MaxUnauthClients: cfg.MaxUnauthClients})
	if err != nil {
		return err
	}
	mgmt.AddProgram(daemon.NewRemoteProgram(mgmt))
	if len(cfg.SASLCredentials) > 0 {
		mgmt.SetCredentials(cfg.SASLCredentials)
	}
	if len(cfg.QoSClasses) > 0 {
		classes, err := qos.ParseClasses(cfg.QoSClasses)
		if err != nil {
			return err // Validate already vetted these; defensive
		}
		mgmt.SetQoS(qos.NewEngine(qos.Config{
			Classes:       classes,
			ShedWatermark: cfg.QoSShedWatermark,
		}))
		log.Infof("daemon", "admission control enabled: %d class(es), shed watermark %d",
			len(classes), cfg.QoSShedWatermark)
	}

	if err := os.MkdirAll(filepath.Dir(cfg.UnixSocketPath), 0o755); err != nil {
		return err
	}
	removeStale(cfg.UnixSocketPath)
	if err := mgmt.ListenUnix(cfg.UnixSocketPath, daemon.ServiceConfig{}); err != nil {
		return err
	}
	log.Infof("daemon", "management server listening on %s", cfg.UnixSocketPath)

	if *tcpOverride != "" || cfg.ListenTCP {
		addr := *tcpOverride
		if addr == "" {
			addr = fmt.Sprintf("%s:%d", cfg.TCPBindAddress, cfg.TCPPort)
		}
		tcpCfg := daemon.ServiceConfig{Transport: daemon.TransportTCP}
		if cfg.AuthTCP == "sasl" {
			tcpCfg.AuthSASL = true
		}
		bound, err := mgmt.ListenTCP(addr, tcpCfg)
		if err != nil {
			return err
		}
		log.Infof("daemon", "management server listening on tcp %s (auth=%s)", bound, cfg.AuthTCP)
	}

	// Admin server: small dedicated pool so it stays responsive while the
	// management workers are saturated.
	adm, err := d.AddServer("admin", 1, 4, 1, daemon.ClientLimits{MaxClients: 10})
	if err != nil {
		return err
	}
	adm.AddProgram(admin.NewProgram(d))
	removeStale(cfg.AdminSocketPath)
	if err := adm.ListenUnix(cfg.AdminSocketPath, daemon.ServiceConfig{}); err != nil {
		return err
	}
	log.Infof("daemon", "admin server listening on %s", cfg.AdminSocketPath)

	// Chaos observability: count fired injections on /metrics.
	telemetry.InstrumentFaultpoints(telemetry.Default, faultpoint.Default)

	// Optional Prometheus-text metrics endpoint; off unless configured.
	// With domain_metrics set, /metrics additionally exports per-domain
	// rows swept from that driver URI behind the staleness-bounded
	// single-flight cache.
	var metricsSrv *telemetry.MetricsServer
	if cfg.MetricsAddress != "" {
		var dc *telemetry.DomainCollector
		if cfg.DomainMetricsURI != "" {
			conn, err := core.Open(cfg.DomainMetricsURI)
			if err != nil {
				return fmt.Errorf("domain_metrics: %w", err)
			}
			dc, err = telemetry.NewDriverDomainCollector(conn.Driver(), telemetry.DomainCollectorConfig{
				Staleness:  time.Duration(cfg.DomainMetricsStalenessMs) * time.Millisecond,
				MaxDomains: cfg.DomainMetricsMaxDomains,
			})
			if err != nil {
				return fmt.Errorf("domain_metrics: %w", err)
			}
			log.Infof("daemon", "per-domain metrics export sweeping %s (staleness %dms, cap %d)",
				cfg.DomainMetricsURI, cfg.DomainMetricsStalenessMs, cfg.DomainMetricsMaxDomains)
		}
		metricsSrv, err = telemetry.ServeMetrics(cfg.MetricsAddress,
			telemetry.HandlerWith(telemetry.Default, dc))
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		log.Infof("daemon", "metrics endpoint listening on http://%s/metrics", metricsSrv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	log.Infof("daemon", "received %s, shutting down", s)
	if metricsSrv != nil {
		// Drain in-flight scrapes within the same grace budget as the
		// RPC servers instead of dying with the process.
		grace := time.Duration(cfg.ShutdownGraceMs) * time.Millisecond
		if err := metricsSrv.Shutdown(grace); err != nil {
			log.Errorf("daemon", "metrics endpoint shutdown: %v", err)
		}
	}
	d.Shutdown()
	removeStale(cfg.UnixSocketPath)
	removeStale(cfg.AdminSocketPath)
	return nil
}

// removeStale deletes a leftover socket file so rebinding succeeds.
func removeStale(path string) {
	if fi, err := os.Stat(path); err == nil && fi.Mode()&os.ModeSocket != 0 {
		os.Remove(path) //nolint:errcheck
	}
}
