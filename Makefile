GO ?= go

.PHONY: check build test race vet bench report

check: ## vet + build + race-enabled tests (the repo's verify gate)
	sh scripts/check.sh

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

report:
	$(GO) run ./cmd/benchreport
