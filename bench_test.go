// Package repro holds the benchmark harness: one bench per table and
// figure of the reconstructed evaluation (see DESIGN.md, Experiment
// index) plus the ablations. Run with:
//
//	go test -bench=. -benchmem
//
// cmd/benchreport renders the same experiments as paper-style tables.
package repro

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admin"
	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/drivers/common"
	"repro/internal/drivers/lxc"
	"repro/internal/drivers/qemu"
	"repro/internal/drivers/remote"
	drvtest "repro/internal/drivers/test"
	"repro/internal/drivers/xen"
	"repro/internal/faultpoint"
	"repro/internal/fleet"
	"repro/internal/hyper"
	"repro/internal/hyper/qsim"
	"repro/internal/hyper/xsim"
	"repro/internal/logging"
	"repro/internal/migrate"
	"repro/internal/nodeinfo"
	"repro/internal/qos"
	"repro/internal/rpc"
	"repro/internal/scale"
	"repro/internal/telemetry"
	"repro/internal/typedparams"
	"repro/internal/uri"
)

var quiet = logging.NewQuiet(logging.Error)

func driverConn(b *testing.B, name string) core.DriverConn {
	b.Helper()
	u := &uri.URI{Driver: name, Path: "/system"}
	var (
		drv core.DriverConn
		err error
	)
	switch name {
	case "qsim":
		drv, err = qemu.New(u, quiet)
	case "xsim":
		drv, err = xen.New(u, quiet)
	case "csim":
		drv, err = lxc.New(u, quiet)
	case "test":
		u.Path = "/empty"
		drv, err = drvtest.New(u, quiet)
	default:
		b.Fatalf("unknown driver %s", name)
	}
	if err != nil {
		b.Fatal(err)
	}
	return drv
}

func benchDomainXML(driver, name string) string {
	return fmt.Sprintf(`<domain type='%s'><name>%s</name><description>cpu_util=0.4 dirty_pages_sec=1000 block_iops=100 net_pps=500</description><memory unit='MiB'>512</memory><vcpu>2</vcpu><os><type arch='x86_64'>hvm</type></os></domain>`, driver, name)
}

func mustDefineStart(b *testing.B, drv core.DriverConn, driver, name string) {
	b.Helper()
	if _, err := drv.DefineDomain(benchDomainXML(driver, name)); err != nil {
		b.Fatal(err)
	}
	if err := drv.CreateDomain(name); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkT1_AbstractionOverhead measures the info operation through
// the uniform API and through each hypervisor's native interface,
// quantifying the layer's cost (Table T1).
func BenchmarkT1_AbstractionOverhead(b *testing.B) {
	b.Run("qsim/uniform", func(b *testing.B) {
		drv := driverConn(b, "qsim")
		mustDefineStart(b, drv, "qsim", "vm")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := drv.DomainInfo("vm"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("qsim/native", func(b *testing.B) {
		node, _ := nodeinfo.NewNode("n", nodeinfo.ProfileServer)
		hv := qsim.New(node)
		e, err := hv.Launch(hyper.Config{Name: "vm", VCPUs: 2, MemKiB: 512 * 1024})
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Monitor().ExecuteCommand("system_boot", nil, nil); err != nil {
			b.Fatal(err)
		}
		var st struct {
			Status string `json:"status"`
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := e.Monitor().ExecuteCommand("query-status", nil, &st); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("xsim/uniform", func(b *testing.B) {
		drv := driverConn(b, "xsim")
		mustDefineStart(b, drv, "xsim", "vm")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := drv.DomainInfo("vm"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("xsim/native", func(b *testing.B) {
		node, _ := nodeinfo.NewNode("n", nodeinfo.ProfileServer)
		hv := xsim.New(node)
		res := hv.Call(xsim.Domain0, xsim.Hypercall{Op: xsim.OpDomainCreate, Args: xsim.CreateArgs{
			Name: "vm", VCPUs: 2, MemKiB: 512 * 1024,
		}})
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		id := res.Value.(xsim.DomID)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if r := hv.Call(xsim.Domain0, xsim.Hypercall{Op: xsim.OpDomainGetInfo, Dom: id}); r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	})
	b.Run("csim/uniform", func(b *testing.B) {
		drv := driverConn(b, "csim")
		mustDefineStart(b, drv, "csim", "vm")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := drv.DomainInfo("vm"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkT2_Transports compares the same round trip over in-process
// dispatch, a unix socket and a TCP socket (Table T2).
func BenchmarkT2_Transports(b *testing.B) {
	b.Run("local", func(b *testing.B) {
		drv := driverConn(b, "test")
		mustDefineStart(b, drv, "test", "vm")
		conn := core.OpenWith(&uri.URI{Driver: "test"}, drv)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := conn.Hostname(); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, tr := range []string{"unix", "tcp"} {
		b.Run(tr, func(b *testing.B) {
			conn := startBenchDaemon(b, tr)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := conn.Hostname(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(tr+"/dominfo", func(b *testing.B) {
			conn := startBenchDaemon(b, tr)
			dom, err := conn.LookupDomain("test")
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dom.Info(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkT2b_BulkSweep measures the monitoring-sweep cost over a unix
// socket as the fleet grows (Table T2b): the per-domain loop issues one
// round trip per domain, the bulk procedure issues exactly one for the
// whole host. A single DomainInfo round trip is included as the unit the
// bulk sweep is compared against.
func BenchmarkT2b_BulkSweep(b *testing.B) {
	setup := func(b *testing.B, domains int) *core.Connect {
		b.Helper()
		conn := startBenchDaemon(b, "unix")
		for i := 0; i < domains; i++ {
			dom, err := conn.DefineDomain(benchDomainXML("test", fmt.Sprintf("vm%04d", i)))
			if err != nil {
				b.Fatal(err)
			}
			if err := dom.Create(); err != nil {
				b.Fatal(err)
			}
		}
		return conn
	}
	b.Run("single-dominfo", func(b *testing.B) {
		conn := setup(b, 1)
		dom, err := conn.LookupDomain("vm0000")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := dom.Info(); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, domains := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("singles/domains-%d", domains), func(b *testing.B) {
			conn := setup(b, domains)
			names, err := conn.ListAllDomains(0)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, dom := range names {
					if _, err := dom.Info(); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(domains), "domains")
		})
		b.Run(fmt.Sprintf("bulk/domains-%d", domains), func(b *testing.B) {
			conn := setup(b, domains)
			// Steady-state polling form: the inventory is retained
			// across sweeps, exactly as the fleet poller holds it.
			var inv core.NodeInventory
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := conn.NodeInventoryInto(&inv); err != nil {
					b.Fatal(err)
				}
				if len(inv.Domains) < domains {
					b.Fatalf("inventory lost domains: %d < %d", len(inv.Domains), domains)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(domains), "domains")
		})
	}
}

// startBenchDaemon brings up a daemon with the test driver and returns a
// remote connection over the chosen transport.
func startBenchDaemon(b *testing.B, transport string) *core.Connect {
	return startBenchDaemonOn(b, transport, daemon.New(quiet))
}

// startBenchDaemonOn is startBenchDaemon with a caller-supplied daemon,
// so benches can compare instrumented and uninstrumented builds.
func startBenchDaemonOn(b *testing.B, transport string, d *daemon.Daemon) *core.Connect {
	b.Helper()
	core.ResetRegistryForTest()
	drvtest.Register(quiet)
	remote.Register()
	srv, err := d.AddServer("govirtd", 2, 8, 2, daemon.ClientLimits{MaxClients: 64})
	if err != nil {
		b.Fatal(err)
	}
	srv.AddProgram(daemon.NewRemoteProgram(srv))
	var uriStr string
	switch transport {
	case "unix":
		sock := filepath.Join(b.TempDir(), "b.sock")
		if err := srv.ListenUnix(sock, daemon.ServiceConfig{}); err != nil {
			b.Fatal(err)
		}
		uriStr = "test+unix:///default?socket=" + strings.ReplaceAll(sock, "/", "%2F")
	case "tcp":
		addr, err := srv.ListenTCP("127.0.0.1:0", daemon.ServiceConfig{Transport: daemon.TransportTCP})
		if err != nil {
			b.Fatal(err)
		}
		host, port, _ := strings.Cut(addr, ":")
		uriStr = fmt.Sprintf("test+tcp://%s:%s/default", host, port)
	}
	conn, err := core.Open(uriStr)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		conn.Close()
		d.Shutdown()
		core.ResetRegistryForTest()
	})
	return conn
}

// BenchmarkT3_Lifecycle runs the full start/destroy cycle per driver and
// reports the modelled guest-visible latency alongside the management
// overhead (Table T3).
func BenchmarkT3_Lifecycle(b *testing.B) {
	for _, driver := range []string{"qsim", "xsim", "csim", "test"} {
		b.Run(driver, func(b *testing.B) {
			drv := driverConn(b, driver)
			if _, err := drv.DefineDomain(benchDomainXML(driver, "vm")); err != nil {
				b.Fatal(err)
			}
			var simNs uint64
			ma := drv.(core.MachineAccess)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := drv.CreateDomain("vm"); err != nil {
					b.Fatal(err)
				}
				if m, err := ma.Machine("vm"); err == nil {
					simNs += m.Stats().SimTimeNs
				}
				if err := drv.DestroyDomain("vm"); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if b.N > 0 {
				b.ReportMetric(float64(simNs)/float64(b.N)/1e6, "simulated-ms/op")
			}
		})
	}
}

// BenchmarkT4_Monitoring polls the full stats of a fleet of N domains,
// the non-intrusive monitoring workload (Table T4).
func BenchmarkT4_Monitoring(b *testing.B) {
	for _, fleet := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("domains-%d", fleet), func(b *testing.B) {
			drv := driverConn(b, "test")
			for i := 0; i < fleet; i++ {
				mustDefineStart(b, drv, "test", fmt.Sprintf("vm%04d", i))
			}
			names, err := drv.ListDomains(core.ListActive)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, n := range names {
					if _, err := drv.DomainStats(n); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(fleet), "domains")
		})
	}
}

// BenchmarkT5_Admin measures the admin-plane operations over a unix
// socket (Table T5, extension).
func BenchmarkT5_Admin(b *testing.B) {
	setup := func(b *testing.B) *admin.Connect {
		b.Helper()
		d := daemon.New(quiet)
		srv, err := d.AddServer("govirtd", 2, 8, 2, daemon.ClientLimits{MaxClients: 64})
		if err != nil {
			b.Fatal(err)
		}
		srv.AddProgram(daemon.NewRemoteProgram(srv))
		adm, err := d.AddServer("admin", 1, 2, 1, daemon.ClientLimits{MaxClients: 8})
		if err != nil {
			b.Fatal(err)
		}
		adm.AddProgram(admin.NewProgram(d))
		sock := filepath.Join(b.TempDir(), "a.sock")
		if err := adm.ListenUnix(sock, daemon.ServiceConfig{}); err != nil {
			b.Fatal(err)
		}
		conn, err := admin.Open(sock)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() {
			conn.Close()
			d.Shutdown()
		})
		return conn
	}
	b.Run("threadpool-info", func(b *testing.B) {
		conn := setup(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := conn.ThreadpoolParams("govirtd"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("threadpool-set", func(b *testing.B) {
		conn := setup(b)
		params := typedparams.NewList()
		params.AddUInt(admin.FieldMaxWorkers, 8) //nolint:errcheck
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := conn.SetThreadpoolParams("govirtd", params); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("client-list", func(b *testing.B) {
		conn := setup(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := conn.ListClients("admin"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("log-define-filters", func(b *testing.B) {
		conn := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := conn.SetLoggingFilters("3:rpc 4:daemon.server 1:driver.test"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkT6_TelemetryOverhead compares the T2 unix-socket op mix
// (Hostname + DomainInfo) against a daemon built with telemetry disabled
// entirely (Table T6). The instrumented dispatch path must stay within
// 5% of the uninstrumented one.
func BenchmarkT6_TelemetryOverhead(b *testing.B) {
	for _, mode := range []string{"uninstrumented", "instrumented"} {
		b.Run(mode, func(b *testing.B) {
			var d *daemon.Daemon
			if mode == "instrumented" {
				d = daemon.New(quiet)
			} else {
				d = daemon.NewWithTelemetry(quiet, nil)
			}
			conn := startBenchDaemonOn(b, "unix", d)
			dom, err := conn.LookupDomain("test")
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := conn.Hostname(); err != nil {
					b.Fatal(err)
				}
				if _, err := dom.Info(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkF1_Scale measures list and lookup latency as the number of
// defined domains grows (Figure F1).
func BenchmarkF1_Scale(b *testing.B) {
	for _, count := range []int{10, 100, 1000, 10000} {
		drv := driverConn(b, "test")
		for i := 0; i < count; i++ {
			if _, err := drv.DefineDomain(benchDomainXML("test", fmt.Sprintf("vm%05d", i))); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(fmt.Sprintf("list/domains-%d", count), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := drv.ListDomains(0); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("lookup/domains-%d", count), func(b *testing.B) {
			target := fmt.Sprintf("vm%05d", count/2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := drv.LookupDomain(target); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// workUnit simulates one request's service time: daemon workers spend
// most of a request waiting on the hypervisor, so the cost is a wait,
// not CPU — which is exactly why additional workers raise throughput.
func workUnit() {
	time.Sleep(100 * time.Microsecond)
}

// BenchmarkF2_Workerpool measures job throughput as the worker limit
// grows under concurrent submission (Figure F2). Expected shape: ns/op
// scales inversely with workers until the dispatch path saturates.
func BenchmarkF2_Workerpool(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			pool, err := daemon.NewWorkerpool(workers, workers, 0)
			if err != nil {
				b.Fatal(err)
			}
			defer pool.Shutdown()
			b.ResetTimer()
			var wg sync.WaitGroup
			wg.Add(b.N)
			for i := 0; i < b.N; i++ {
				if err := pool.Submit(func() {
					workUnit()
					wg.Done()
				}, false); err != nil {
					b.Fatal(err)
				}
			}
			wg.Wait()
		})
	}
}

// BenchmarkF3_Migration sweeps memory size and dirty rate through the
// pre-copy model, reporting the modelled totals (Figure F3). The ns/op
// value is the engine's own computational cost.
func BenchmarkF3_Migration(b *testing.B) {
	for _, memGiB := range []uint64{1, 4, 16} {
		for _, dirty := range []uint64{1_000, 100_000, 1_000_000} {
			name := fmt.Sprintf("mem-%dGiB/dirty-%dpps", memGiB, dirty)
			b.Run(name, func(b *testing.B) {
				var last migrate.Result
				for i := 0; i < b.N; i++ {
					res, err := migrate.Estimate(
						migrate.Workload{MemKiB: memGiB * 1024 * 1024, DirtyPagesSec: dirty},
						core.MigrateOptions{BandwidthMBps: 1000, MaxDowntimeMs: 300, MaxIterations: 30})
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(last.TotalTimeMs(), "sim-total-ms")
				b.ReportMetric(last.DowntimeMs(), "sim-downtime-ms")
				b.ReportMetric(float64(last.Iterations), "iterations")
			})
		}
	}
}

// BenchmarkF4_XDR measures serialization throughput across payload
// shapes (Figure F4).
func BenchmarkF4_XDR(b *testing.B) {
	type small struct {
		A uint32
		B uint64
		S string
	}
	type statsLike struct {
		State      uint32
		CPUTimeNs  uint64
		MemKiB     uint64
		MaxMemKiB  uint64
		VCPUs      uint32
		RdBytes    uint64
		WrBytes    uint64
		RdReqs     uint64
		WrReqs     uint64
		RxBytes    uint64
		TxBytes    uint64
		RxPkts     uint64
		TxPkts     uint64
		DirtyPages uint64
	}
	cases := []struct {
		name string
		v    interface{}
		mk   func() interface{}
	}{
		{"small", &small{A: 1, B: 2, S: "domain-name"}, func() interface{} { return &small{} }},
		{"stats", &statsLike{CPUTimeNs: 1 << 40, MemKiB: 1 << 20}, func() interface{} { return &statsLike{} }},
		{"xml-4KiB", &struct{ X string }{strings.Repeat("<x/>", 1024)}, func() interface{} { return &struct{ X string }{} }},
		{"xml-64KiB", &struct{ X string }{strings.Repeat("<x/>", 16384)}, func() interface{} { return &struct{ X string }{} }},
	}
	for _, c := range cases {
		b.Run("marshal/"+c.name, func(b *testing.B) {
			b.ReportAllocs()
			var total int
			for i := 0; i < b.N; i++ {
				out, err := rpc.Marshal(c.v)
				if err != nil {
					b.Fatal(err)
				}
				total += len(out)
			}
			b.SetBytes(int64(total / b.N))
		})
		data, err := rpc.Marshal(c.v)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("unmarshal/"+c.name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if err := rpc.Unmarshal(data, c.mk()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// synthFleet builds a synthetic fleet snapshot for the pure scheduler
// and planner benches: server-profile hosts with a sawtooth of existing
// load so policies have real choices to make.
func synthFleet(hosts int) []fleet.HostInventory {
	invs := make([]fleet.HostInventory, 0, hosts)
	for i := 0; i < hosts; i++ {
		inv := fleet.HostInventory{
			Host: fmt.Sprintf("host%04d", i), State: fleet.HostUp, DriverType: "test",
			Node: core.NodeInfo{MemoryKiB: 256 * 1024 * 1024, CPUs: 64},
		}
		for j := 0; j < i%8; j++ {
			inv.Domains = append(inv.Domains, fleet.DomainRecord{
				Name: fmt.Sprintf("vm%04d-%d", i, j), State: core.DomainRunning,
				MemKiB: 8 * 1024 * 1024, VCPUs: 4,
			})
		}
		invs = append(invs, inv)
	}
	return invs
}

// startBenchFleet brings up n in-process daemons and a fleet registry
// over them, for the live placement and rebalance benches.
func startBenchFleet(b *testing.B, n int) *fleet.Registry {
	b.Helper()
	core.ResetRegistryForTest()
	drvtest.Register(quiet)
	remote.Register()
	dir := b.TempDir()
	var uris []string
	for i := 0; i < n; i++ {
		d := daemon.New(quiet)
		srv, err := d.AddServer("govirtd", 2, 8, 2, daemon.ClientLimits{MaxClients: 64})
		if err != nil {
			b.Fatal(err)
		}
		srv.AddProgram(daemon.NewRemoteProgram(srv))
		sock := filepath.Join(dir, fmt.Sprintf("node%d.sock", i))
		if err := srv.ListenUnix(sock, daemon.ServiceConfig{}); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(d.Shutdown)
		uris = append(uris, "test+unix:///empty?socket="+strings.ReplaceAll(sock, "/", "%2F"))
	}
	reg, err := fleet.New(fleet.Config{Hosts: uris, PollInterval: time.Second, Log: quiet})
	if err != nil {
		b.Fatal(err)
	}
	reg.Start()
	b.Cleanup(func() {
		reg.Close()
		core.ResetRegistryForTest()
	})
	if up := reg.WaitSettled(5 * time.Second); up != n {
		b.Fatalf("%d/%d fleet hosts up", up, n)
	}
	return reg
}

// BenchmarkF5_Placement measures the fleet scheduler (Figure F5): the
// pure ranking pass across fleet sizes and policies, and a live
// place-and-teardown cycle against three in-process daemons.
func BenchmarkF5_Placement(b *testing.B) {
	req := fleet.Request{Name: "new", TypeName: "test", MemKiB: 8 * 1024 * 1024, VCPUs: 4}
	for _, hosts := range []int{10, 100, 1000} {
		invs := synthFleet(hosts)
		for _, pol := range []fleet.Policy{fleet.Spread(), fleet.Pack()} {
			b.Run(fmt.Sprintf("rank/%s/hosts-%d", pol.Name(), hosts), func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if got := fleet.Rank(pol, req, invs); len(got) == 0 {
						b.Fatal("empty ranking")
					}
				}
			})
		}
	}
	b.Run("live/schedule-3hosts", func(b *testing.B) {
		reg := startBenchFleet(b, 3)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Full cycle: rank, define+start over RPC, then tear the
			// domain back down so the fleet stays at steady state.
			p, err := reg.Schedule(benchDomainXML("test", fmt.Sprintf("vm%06d", i)))
			if err != nil {
				b.Fatal(err)
			}
			if err := p.Domain.Destroy(); err != nil {
				b.Fatal(err)
			}
			if err := p.Domain.Undefine(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkT7_Rebalance measures the fleet rebalancer (Table T7): the
// pure planning pass across fleet sizes, and a live drain that moves a
// domain between two daemons by iterative pre-copy each iteration.
func BenchmarkT7_Rebalance(b *testing.B) {
	for _, hosts := range []int{4, 16, 64} {
		invs := synthFleet(hosts)
		b.Run(fmt.Sprintf("plan/hosts-%d", hosts), func(b *testing.B) {
			b.ReportAllocs()
			var moves int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mv, _, _, _ := fleet.PlanRebalance(invs, fleet.RebalanceOptions{
					SkewThreshold: 0.05, MaxMigrations: 64,
				})
				moves = len(mv)
			}
			b.ReportMetric(float64(moves), "moves")
		})
	}
	b.Run("live/drain-migrate", func(b *testing.B) {
		reg := startBenchFleet(b, 2)
		p, err := reg.Schedule(benchDomainXML("test", "wanderer"))
		if err != nil {
			b.Fatal(err)
		}
		from := p.Host
		var simTotalNs, simDownNs uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := reg.Rebalance(context.Background(), fleet.RebalanceOptions{Drain: from})
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Migrations) != 1 || res.Migrations[0].Err != nil {
				b.Fatalf("drain pass: %+v", res)
			}
			from = res.Migrations[0].To
			simTotalNs += res.Migrations[0].Result.TotalTimeNs
			simDownNs += res.Migrations[0].Result.DowntimeNs
		}
		b.StopTimer()
		if b.N > 0 {
			b.ReportMetric(float64(simTotalNs)/float64(b.N)/1e6, "sim-total-ms/op")
			b.ReportMetric(float64(simDownNs)/float64(b.N)/1e6, "sim-downtime-ms/op")
		}
	})
}

// BenchmarkR1_Recovery measures crash recovery (Table R1): the time a
// restarted daemon spends replaying its state journal back into a
// serving driver, versus the number of persistently defined domains.
// Each iteration is one full recovery — open a fresh driver base over
// the same journal and verify every domain came back.
func BenchmarkR1_Recovery(b *testing.B) {
	for _, count := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("domains-%d", count), func(b *testing.B) {
			common.SetStateRoot(b.TempDir())
			defer common.SetStateRoot("")
			u := &uri.URI{Driver: "test", Path: "/r1"}
			seed, err := drvtest.New(u, quiet)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < count; i++ {
				if _, err := seed.DefineDomain(benchDomainXML("test", fmt.Sprintf("vm%05d", i))); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				recovered, err := drvtest.New(u, quiet)
				if err != nil {
					b.Fatal(err)
				}
				names, err := recovered.ListDomains(0)
				if err != nil {
					b.Fatal(err)
				}
				if len(names) != count {
					b.Fatalf("recovered %d/%d domains", len(names), count)
				}
			}
		})
	}
}

// startChaosFleet brings up n journal-backed daemons (distinct state
// scopes, so a connection dropped by a fault replays its environment
// instead of forgetting it) and a registry with fast reconnect and a
// per-call deadline — the configuration the chaos suite exercises.
func startChaosFleet(b *testing.B, n int) *fleet.Registry {
	b.Helper()
	core.ResetRegistryForTest()
	drvtest.Register(quiet)
	remote.Register()
	common.SetStateRoot(b.TempDir())
	b.Cleanup(func() { common.SetStateRoot("") })
	dir := b.TempDir()
	var uris []string
	for i := 0; i < n; i++ {
		d := daemon.New(quiet)
		srv, err := d.AddServer("govirtd", 2, 8, 2, daemon.ClientLimits{MaxClients: 64})
		if err != nil {
			b.Fatal(err)
		}
		srv.AddProgram(daemon.NewRemoteProgram(srv))
		sock := filepath.Join(dir, fmt.Sprintf("node%d.sock", i))
		if err := srv.ListenUnix(sock, daemon.ServiceConfig{}); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(d.Shutdown)
		uris = append(uris, fmt.Sprintf("test+unix:///env%d?socket=%s",
			i, strings.ReplaceAll(sock, "/", "%2F")))
	}
	reg, err := fleet.New(fleet.Config{
		Hosts:        uris,
		PollInterval: 200 * time.Millisecond,
		BackoffMin:   10 * time.Millisecond,
		BackoffMax:   100 * time.Millisecond,
		CallTimeout:  250 * time.Millisecond,
		Seed:         42,
		Log:          quiet,
	})
	if err != nil {
		b.Fatal(err)
	}
	reg.Start()
	b.Cleanup(func() {
		reg.Close()
		core.ResetRegistryForTest()
	})
	if up := reg.WaitSettled(5 * time.Second); up != n {
		b.Fatalf("%d/%d fleet hosts up", up, n)
	}
	return reg
}

// BenchmarkR2_RebalanceUnderFaults measures the drain-migration cycle of
// T7 with a fraction of received RPC frames deterministically dropped
// (Table R2). Faulted passes are retried after the fleet re-settles, so
// ns/op captures the real operational cost of transport loss; the
// reported metrics separate clean moves from faulted passes.
func BenchmarkR2_RebalanceUnderFaults(b *testing.B) {
	for _, prob := range []float64{0, 0.05, 0.10} {
		// No '%' in the name: it would reach the unix socket path via
		// b.TempDir and be eaten by the URI percent-decoder.
		b.Run(fmt.Sprintf("recv-drop-%d", int(prob*100+0.5)), func(b *testing.B) {
			reg := startChaosFleet(b, 2)
			p, err := reg.Schedule(benchDomainXML("test", "wanderer"))
			if err != nil {
				b.Fatal(err)
			}
			from := p.Host
			if prob > 0 {
				faultpoint.Default.Set("rpc.recv", faultpoint.Spec{
					Mode: faultpoint.ModeDrop, Prob: prob,
				})
				faultpoint.Default.Arm(42)
				b.Cleanup(faultpoint.Default.Disarm)
			}
			var moved, faulted int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := reg.Rebalance(context.Background(), fleet.RebalanceOptions{Drain: from})
				if err != nil || len(res.Migrations) == 0 {
					faulted++
					reg.WaitSettled(5 * time.Second)
					continue
				}
				rec := res.Migrations[len(res.Migrations)-1]
				if rec.Err != nil {
					faulted++
					reg.WaitSettled(5 * time.Second)
					continue
				}
				from = rec.To
				moved++
			}
			b.StopTimer()
			b.ReportMetric(float64(moved), "migrations")
			b.ReportMetric(float64(faulted), "faulted-passes")
		})
	}
}

// BenchmarkA1_PriorityWorkers is the ablation for the priority-worker
// split: latency of a guaranteed-finish job while every ordinary worker
// is wedged, with and without priority workers.
func BenchmarkA1_PriorityWorkers(b *testing.B) {
	for _, prio := range []int{0, 2} {
		b.Run(fmt.Sprintf("prio-%d", prio), func(b *testing.B) {
			pool, err := daemon.NewWorkerpool(2, 2, prio)
			if err != nil {
				b.Fatal(err)
			}
			defer pool.Shutdown()
			// Wedge the ordinary workers with jobs that only finish when
			// released.
			release := make(chan struct{})
			for i := 0; i < 2; i++ {
				pool.Submit(func() { <-release }, false) //nolint:errcheck
			}
			defer close(release)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				done := make(chan struct{})
				if err := pool.Submit(func() { close(done) }, true); err != nil {
					b.Fatal(err)
				}
				if prio > 0 {
					<-done // completes despite the wedge
				}
				// With prio == 0 the job can never run until release; we
				// measure only the submission path there.
			}
		})
	}
}

// lockedFilters is the mutex-based comparator for ablation A2: every
// filter check takes the same lock the redefiner holds, the design the
// read-copy-update swap replaces.
type lockedFilters struct {
	mu      sync.Mutex
	level   logging.Priority
	filters []logging.Filter
}

func (l *lockedFilters) enabled(module string, p logging.Priority) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, f := range l.filters {
		if module == f.Match || strings.HasPrefix(module, f.Match+".") {
			return p >= f.Priority
		}
	}
	return p >= l.level
}

func (l *lockedFilters) define(s string) error {
	filters, err := logging.ParseFilters(s)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.filters = filters
	return nil
}

// BenchmarkA2_LogRedefineContention is the ablation for the RCU-style
// settings swap: hot-path filter-check throughput with a concurrent
// redefiner active, for the lock-free (rcu) and mutex designs.
func BenchmarkA2_LogRedefineContention(b *testing.B) {
	for _, impl := range []string{"rcu", "mutex"} {
		for _, contended := range []bool{false, true} {
			name := impl + "/steady"
			if contended {
				name = impl + "/redefining"
			}
			b.Run(name, func(b *testing.B) {
				rcu := logging.NewQuiet(logging.Warn)
				locked := &lockedFilters{level: logging.Warn}
				stop := make(chan struct{})
				defer close(stop)
				if contended {
					go func() {
						for i := 0; ; i++ {
							select {
							case <-stop:
								return
							default:
								def := fmt.Sprintf("%d:mod%d", i%4+1, i%8)
								if impl == "rcu" {
									rcu.DefineFilters(def) //nolint:errcheck
								} else {
									locked.define(def) //nolint:errcheck
								}
							}
						}
					}()
				}
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						if impl == "rcu" {
							rcu.Debugf("hot.path", "dropped message")
						} else {
							locked.enabled("hot.path", logging.Debug)
						}
					}
				})
			})
		}
	}
}

// BenchmarkA3_HypercallBatching is the ablation for xsim multicall
// batching: privilege transitions consumed by a shutdown sequence with
// batching on and off.
func BenchmarkA3_HypercallBatching(b *testing.B) {
	for _, batch := range []bool{true, false} {
		name := "batched"
		if !batch {
			name = "unbatched"
		}
		b.Run(name, func(b *testing.B) {
			node, _ := nodeinfo.NewNode("n", nodeinfo.ProfileServer)
			hv := xsim.New(node)
			drv := xen.NewOn(hv, node, batch, quiet)
			if _, err := drv.DefineDomain(benchDomainXML("xsim", "vm")); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := drv.CreateDomain("vm"); err != nil {
					b.Fatal(err)
				}
				if err := drv.ShutdownDomain("vm"); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			served, saved := hv.HypercallCount()
			b.ReportMetric(float64(served)/float64(b.N), "hypercalls/op")
			b.ReportMetric(float64(saved)/float64(b.N), "saved/op")
		})
	}
}

// BenchmarkT9_Scrape measures the per-domain metrics export (Table T9):
// what one /metrics scrape costs as a function of domain count, swept
// (staleness 0: every scrape pays one bulk inventory sweep plus a
// render) versus cached (inside the staleness window: one mutex, zero
// allocations). The cached/parallel case is the N-concurrent-scrapers
// story — single-flight means they all ride one sweep.
func BenchmarkT9_Scrape(b *testing.B) {
	setup := func(b *testing.B, domains int, staleness time.Duration) *telemetry.DomainCollector {
		b.Helper()
		drv := driverConn(b, "test")
		for i := 0; i < domains; i++ {
			if _, err := drv.DefineDomain(benchDomainXML("test", fmt.Sprintf("vm%05d", i))); err != nil {
				b.Fatal(err)
			}
		}
		dc, err := telemetry.NewDriverDomainCollector(drv, telemetry.DomainCollectorConfig{
			Staleness: staleness,
			Labels:    []string{"domain", "state"},
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dc.Exposition(); err != nil { // warm buffers and caches
			b.Fatal(err)
		}
		return dc
	}

	for _, domains := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("sweep/domains-%d", domains), func(b *testing.B) {
			dc := setup(b, domains, 0)
			warmSweeps := dc.Stats().Sweeps
			b.ReportAllocs()
			b.ResetTimer()
			var bytesOut int
			for i := 0; i < b.N; i++ {
				out, err := dc.Exposition()
				if err != nil {
					b.Fatal(err)
				}
				bytesOut = len(out)
			}
			b.StopTimer()
			b.ReportMetric(float64(bytesOut), "bytes/scrape")
			st := dc.Stats()
			b.ReportMetric(float64(st.Sweeps-warmSweeps)/float64(b.N), "sweeps/scrape")
		})
	}

	b.Run("cached/domains-10000", func(b *testing.B) {
		dc := setup(b, 10000, time.Hour)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := dc.Exposition(); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("cached/parallel-10000", func(b *testing.B) {
		dc := setup(b, 10000, time.Hour)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := dc.Exposition(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.StopTimer()
		if st := dc.Stats(); st.Sweeps != 1 {
			b.Fatalf("cached parallel scrape swept %d times, want 1", st.Sweeps)
		}
	})
}

// t8Tiers returns the fleet sizes the T8 mega-fleet benchmark runs.
// The 1,000-host / 100k-domain tier takes tens of seconds to bring up,
// so it only runs when GOVIRT_T8_FULL is set; the default tiers keep
// `go test -bench . -benchtime=1x` smoke runs fast.
func t8Tiers() []int {
	tiers := []int{10, 100}
	if os.Getenv("GOVIRT_T8_FULL") != "" {
		tiers = append(tiers, 1000)
	}
	return tiers
}

// BenchmarkT8_MegaFleet measures the management layer at simulated
// mega-fleet scale (Table T8): N real daemon instances in one process,
// each serving the fake hypervisor over a memory transport, driven by
// one sharded registry. Per tier it reports scheduler placement
// latency, rebalance planning time over the full inventory, the O(hosts)
// summary read the scheduler ranks from, and — as metrics — how long the
// fleet took to settle and the registry's retained working set.
func BenchmarkT8_MegaFleet(b *testing.B) {
	for _, hosts := range t8Tiers() {
		b.Run(fmt.Sprintf("hosts-%d", hosts), func(b *testing.B) {
			core.ResetRegistryForTest()
			drvtest.Register(quiet)
			remote.Register()
			f, err := scale.Launch(scale.Options{
				Hosts:          hosts,
				DomainsPerHost: 100,
				PollInterval:   time.Hour, // poll noise off; refreshes are explicit
				Log:            quiet,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() {
				f.Close()
				core.ResetRegistryForTest()
			})
			if err := f.SeedDomains(); err != nil {
				b.Fatal(err)
			}

			b.Run("schedule", func(b *testing.B) {
				lats := make([]time.Duration, 0, b.N)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					t0 := time.Now()
					p, err := f.Reg.Schedule(benchDomainXML("test", fmt.Sprintf("t8vm%06d", i)))
					if err != nil {
						b.Fatal(err)
					}
					lats = append(lats, time.Since(t0))
					b.StopTimer()
					// Tear back down outside the timer so the fleet stays at
					// its seeded steady state across iterations.
					if err := p.Domain.Destroy(); err != nil {
						b.Fatal(err)
					}
					if err := p.Domain.Undefine(); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
				b.StopTimer()
				b.ReportMetric(float64(scale.Percentile(lats, 99))/1e6, "p99-ms")
			})

			b.Run("plan", func(b *testing.B) {
				b.ReportAllocs()
				var moves int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					mv, _, _, _ := fleet.PlanRebalance(f.Reg.Inventory(), fleet.RebalanceOptions{
						SkewThreshold: 0.05, MaxMigrations: 64,
					})
					moves = len(mv)
				}
				b.StopTimer()
				b.ReportMetric(float64(moves), "moves")
			})

			b.Run("summaries", func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if got := len(f.Reg.Summaries()); got != hosts {
						b.Fatalf("summaries = %d, want %d", got, hosts)
					}
				}
			})

			b.Run("stats", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_ = f.Domains()
				}
				b.ReportMetric(float64(f.SettleTime)/1e6, "settle-ms")
				b.ReportMetric(float64(f.SeedTime)/1e6, "seed-ms")
				b.ReportMetric(float64(f.RegistryBytes())/(1<<20), "registry-MiB")
			})
		})
	}
}

// BenchmarkT10_WatchPropagation measures the watch-stream reconcile
// loop (Table T10) on a 64-daemon fleet: how fast a lifecycle change on
// a daemon lands in the registry's cached summaries, and what the fleet
// costs at steady state. The watch tier runs with polling effectively
// off (hour-long interval), so any propagation it records is carried by
// event push alone — the sub-benchmark fails if a sweep contributed.
// The poll tier disables watch mode for the legacy baseline: its event
// bridge pokes the host, so propagation latency is comparable — but
// every change costs full inventory sweeps, and an idle fleet keeps
// interval-sweeping anyway. The benchmark's story is the sweeps/op and
// idle sweeps-per-s columns, not the latency delta.
func BenchmarkT10_WatchPropagation(b *testing.B) {
	const hosts = 64
	for _, tier := range []struct {
		name         string
		disableWatch bool
		poll         time.Duration
	}{
		{"watch", false, time.Hour},
		{"poll-100ms", true, 100 * time.Millisecond},
	} {
		b.Run(tier.name, func(b *testing.B) {
			core.ResetRegistryForTest()
			drvtest.Register(quiet)
			remote.Register()
			f, err := scale.Launch(scale.Options{
				Hosts:          hosts,
				DomainsPerHost: 10,
				PollInterval:   tier.poll,
				DisableWatch:   tier.disableWatch,
				Log:            quiet,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() {
				f.Close()
				core.ResetRegistryForTest()
			})
			if err := f.SeedDomains(); err != nil {
				b.Fatal(err)
			}
			host := f.Names[0]
			conn, err := f.Reg.Host(host)
			if err != nil {
				b.Fatal(err)
			}
			dom, err := conn.LookupDomain("d0000-0000")
			if err != nil {
				b.Fatal(err)
			}
			active := func() int {
				for _, s := range f.Reg.Summaries() {
					if s.Host == host {
						return s.ActiveDomains
					}
				}
				return -1
			}
			waitActive := func(b *testing.B, want int) time.Duration {
				t0 := time.Now()
				for active() != want {
					if time.Since(t0) > 30*time.Second {
						b.Fatalf("summary stuck: active=%d, want %d", active(), want)
					}
					time.Sleep(100 * time.Microsecond)
				}
				return time.Since(t0)
			}
			time.Sleep(300 * time.Millisecond) // drain seeding events and owed turns
			base := active()
			if base != 10 {
				b.Fatalf("host 0 settled at %d active domains, want 10", base)
			}

			b.Run("propagate", func(b *testing.B) {
				st0 := f.Reg.WatchStats()
				lats := make([]time.Duration, 0, b.N)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := dom.Destroy(); err != nil {
						b.Fatal(err)
					}
					lats = append(lats, waitActive(b, base-1))
					b.StopTimer()
					if err := dom.Create(); err != nil {
						b.Fatal(err)
					}
					waitActive(b, base)
					b.StartTimer()
				}
				b.StopTimer()
				st1 := f.Reg.WatchStats()
				b.ReportMetric(float64(scale.Percentile(lats, 50))/1e6, "p50-ms")
				b.ReportMetric(float64(scale.Percentile(lats, 99))/1e6, "p99-ms")
				b.ReportMetric(float64(st1.Sweeps-st0.Sweeps)/float64(b.N), "sweeps/op")
				if !tier.disableWatch && st1.Sweeps != st0.Sweeps {
					b.Fatalf("watch tier propagated via %d sweeps, want pure event push",
						st1.Sweeps-st0.Sweeps)
				}
			})

			b.Run("idle", func(b *testing.B) {
				// The timed body is a trivial cached read; the payload of
				// this sub-benchmark is the sweep-rate metric over a fixed
				// quiesced window after it.
				for i := 0; i < b.N; i++ {
					_ = f.Domains()
				}
				b.StopTimer()
				const window = 500 * time.Millisecond
				st0 := f.Reg.WatchStats()
				time.Sleep(window)
				st1 := f.Reg.WatchStats()
				b.ReportMetric(float64(st1.Sweeps-st0.Sweeps)/window.Seconds(), "sweeps-per-s")
				if !tier.disableWatch && st1.Sweeps != st0.Sweeps {
					b.Fatalf("idle watch fleet performed %d sweeps over %v",
						st1.Sweeps-st0.Sweeps, window)
				}
			})
		})
	}
}

// startQoSBenchDaemon brings up a daemon whose unix listener requires
// SASL, with the given class specs installed (none = admission control
// off), and returns a URI builder for per-user connections.
func startQoSBenchDaemon(b *testing.B, creds map[string]string, specs []string, watermark int) func(user, pass, extra string) string {
	b.Helper()
	core.ResetRegistryForTest()
	drvtest.Register(quiet)
	remote.Register()
	d := daemon.New(quiet)
	srv, err := d.AddServer("govirtd", 2, 8, 2, daemon.ClientLimits{MaxClients: 64})
	if err != nil {
		b.Fatal(err)
	}
	srv.AddProgram(daemon.NewRemoteProgram(srv))
	srv.SetCredentials(creds)
	if len(specs) > 0 {
		classes, err := qos.ParseClasses(specs)
		if err != nil {
			b.Fatal(err)
		}
		srv.SetQoS(qos.NewEngine(qos.Config{Classes: classes, ShedWatermark: watermark}))
	}
	sock := filepath.Join(b.TempDir(), "q.sock")
	if err := srv.ListenUnix(sock, daemon.ServiceConfig{AuthSASL: true}); err != nil {
		b.Fatal(err)
	}
	esc := strings.ReplaceAll(sock, "/", "%2F")
	b.Cleanup(func() {
		d.Shutdown()
		core.ResetRegistryForTest()
	})
	return func(user, pass, extra string) string {
		return fmt.Sprintf("test+unix://%s@/default?socket=%s&password=%s%s", user, esc, pass, extra)
	}
}

// BenchmarkT11_QoSOverhead prices admission control on the
// authenticated unix fast path: the T6 op mix with no engine installed
// versus QoS enabled but unthrottled (huge rate, no ACL, no inflight
// cap). Budget: under 2% added latency and zero extra allocs/op
// (Table T11).
func BenchmarkT11_QoSOverhead(b *testing.B) {
	creds := map[string]string{"bench": "pw"}
	for _, mode := range []string{"qos-off", "qos-on"} {
		b.Run(mode, func(b *testing.B) {
			var specs []string
			if mode == "qos-on" {
				specs = []string{"gold rate_limit_calls_per_s=100000000 burst=100000000 priority=7 users=bench"}
			}
			mkURI := startQoSBenchDaemon(b, creds, specs, 0)
			conn, err := core.Open(mkURI("bench", "pw", ""))
			if err != nil {
				b.Fatal(err)
			}
			defer conn.Close()
			dom, err := conn.LookupDomain("test")
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := conn.Hostname(); err != nil {
					b.Fatal(err)
				}
				if _, err := dom.Info(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkT11_NoisyNeighbor measures a well-behaved tenant's latency
// alone versus with a flooding tenant being rejected at 20x its class
// rate limit on the same daemon, reporting the p99 alongside the mean
// (Table T11). Admission control should keep the two curves close.
func BenchmarkT11_NoisyNeighbor(b *testing.B) {
	creds := map[string]string{"good": "gx", "noisy": "nx"}
	specs := []string{
		"silver rate_limit_calls_per_s=100000000 burst=100000000 priority=7 users=good",
		"bronze rate_limit_calls_per_s=50 burst=10 priority=2 users=noisy",
	}
	for _, mode := range []string{"alone", "flooded"} {
		b.Run(mode, func(b *testing.B) {
			mkURI := startQoSBenchDaemon(b, creds, specs, 64)
			conn, err := core.Open(mkURI("good", "gx", ""))
			if err != nil {
				b.Fatal(err)
			}
			defer conn.Close()
			var stop chan struct{}
			var flooderDone sync.WaitGroup
			if mode == "flooded" {
				noisy, err := core.Open(mkURI("noisy", "nx", "&overload_retry_ms=0"))
				if err != nil {
					b.Fatal(err)
				}
				defer noisy.Close()
				stop = make(chan struct{})
				flooderDone.Add(1)
				go func() {
					defer flooderDone.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						noisy.Hostname() //nolint:errcheck // rejections are the point
						time.Sleep(time.Millisecond)
					}
				}()
			}
			lats := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				if _, err := conn.Hostname(); err != nil {
					b.Fatal(err)
				}
				lats = append(lats, time.Since(t0))
			}
			b.StopTimer()
			if stop != nil {
				close(stop)
				flooderDone.Wait()
			}
			b.ReportMetric(float64(scale.Percentile(lats, 99))/1e6, "p99-ms")
		})
	}
}

// BenchmarkT12_Migration sweeps the live-migration pipeline across
// dirty rate × stream count × mode (Table T12): pre-copy shows total
// time improving monotonically with streams, auto-convergence rescues
// dirty rates that never converge on the raw link, and post-copy keeps
// downtime at the switch-over constant regardless of dirty rate. The
// wire cases push a real migration at an in-process daemon over memnet,
// with and without injected packet loss on the migrate.stream site.
func BenchmarkT12_Migration(b *testing.B) {
	const memKiB = 1024 * 1024 // 1 GiB
	for _, dirty := range []uint64{10_000, 100_000, 300_000} {
		for _, streams := range []int{1, 2, 4, 8} {
			for _, mode := range []string{"precopy", "autoconverge", "postcopy"} {
				name := fmt.Sprintf("dirty-%dpps/streams-%d/%s", dirty, streams, mode)
				b.Run(name, func(b *testing.B) {
					opts := core.MigrateOptions{
						BandwidthMBps: 1000, MaxDowntimeMs: 300, ParallelStreams: streams,
					}
					switch mode {
					case "autoconverge":
						opts.AutoConverge = true
					case "postcopy":
						opts.PostCopy = true
					}
					var last migrate.Result
					for i := 0; i < b.N; i++ {
						res, err := migrate.Estimate(
							migrate.Workload{MemKiB: memKiB, DirtyPagesSec: dirty}, opts)
						if err != nil {
							b.Fatal(err)
						}
						last = res
					}
					b.ReportMetric(last.TotalTimeMs(), "sim-total-ms")
					b.ReportMetric(last.DowntimeMs(), "sim-downtime-ms")
					b.ReportMetric(float64(last.Iterations), "iterations")
					b.ReportMetric(boolMetric(last.Converged), "converged")
					b.ReportMetric(float64(last.ThrottleSteps), "throttle-steps")
					b.ReportMetric(float64(last.PostCopyFaults), "postcopy-faults")
				})
			}
		}
	}

	// Wire leg: the chunks cross the pooled RPC frame path into a real
	// daemon; packet loss on the stream site forces retransmits.
	for _, prob := range []float64{0, 0.05} {
		b.Run(fmt.Sprintf("wire/streams-4/drop-%d", int(prob*100+0.5)), func(b *testing.B) {
			qemu.Register(quiet)
			remote.Register()
			d := daemon.New(quiet)
			srv, err := d.AddServer("govirtd", 2, 8, 2, daemon.ClientLimits{})
			if err != nil {
				b.Fatal(err)
			}
			srv.AddProgram(daemon.NewRemoteProgram(srv))
			ep := fmt.Sprintf("t12-%d", t12Seq.Add(1))
			if err := srv.ListenMem(ep, daemon.ServiceConfig{}); err != nil {
				b.Fatal(err)
			}
			defer d.Shutdown()
			dst, err := core.Open(fmt.Sprintf("qsim+mem://%s/system", ep))
			if err != nil {
				b.Fatal(err)
			}
			defer dst.Close()
			src := core.OpenWith(&uri.URI{Driver: "qsim", Path: "/system"}, driverConn(b, "qsim"))

			if prob > 0 {
				faultpoint.Default.Set(migrate.FaultSiteStream, faultpoint.Spec{
					Mode: faultpoint.ModeDrop, Prob: prob,
				})
				faultpoint.Default.Arm(42)
				b.Cleanup(faultpoint.Default.Disarm)
			}

			var last migrate.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				name := fmt.Sprintf("t12mig%d", i)
				xml := fmt.Sprintf(`<domain type='qsim'><name>%s</name><description>cpu_util=0.5 dirty_pages_sec=50000</description><memory unit='MiB'>512</memory><vcpu>2</vcpu><os><type arch='x86_64'>hvm</type></os></domain>`, name)
				b.StopTimer()
				dom, err := src.CreateDomainXML(xml)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				res, err := migrate.Migrate(dom, dst, core.MigrateOptions{
					ParallelStreams: 4, AutoConverge: true, UndefineSource: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res
				b.StopTimer()
				if rd, err := dst.LookupDomain(name); err == nil {
					rd.Destroy()  //nolint:errcheck
					rd.Undefine() //nolint:errcheck
				}
				b.StartTimer()
			}
			b.StopTimer()
			b.ReportMetric(last.TotalTimeMs(), "sim-total-ms")
			b.ReportMetric(float64(last.RetransmitKiB), "retransmit-KiB")
		})
	}
}

var t12Seq atomic.Int64

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
