#!/bin/sh
# bench.sh — regenerate the machine-readable fast-path metrics
# (BENCH_5.json). Run on an otherwise idle machine: the sweep numbers
# are wall-clock sensitive and CPU contention inflates them badly.
set -eu

cd "$(dirname "$0")/.."

out=BENCH_5.json
go run ./cmd/benchreport --json >"$out"
echo "wrote $out"
