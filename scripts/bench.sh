#!/bin/sh
# bench.sh — regenerate the machine-readable fast-path metrics
# (BENCH_10.json: codec, bulk sweep, per-domain scrape, mega-fleet scale
# curve, watch-stream propagation, QoS admission overhead, migration
# pipeline sweep). Run on an otherwise idle machine:
# the sweep numbers are
# wall-clock sensitive and CPU contention inflates them badly. The
# fleet_scale section includes the 1,000-host / 100k-domain tier, so a
# full run takes a minute or two; old BENCH_*.json files stay in place —
# `benchreport --trajectory` merges them all into one history table.
set -eu

cd "$(dirname "$0")/.."

out=BENCH_10.json
go run ./cmd/benchreport --json >"$out"
echo "wrote $out"
go run ./cmd/benchreport --trajectory
