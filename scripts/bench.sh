#!/bin/sh
# bench.sh — regenerate the machine-readable fast-path metrics
# (BENCH_6.json: codec, bulk sweep, per-domain scrape). Run on an
# otherwise idle machine: the sweep numbers are wall-clock sensitive and
# CPU contention inflates them badly.
set -eu

cd "$(dirname "$0")/.."

out=BENCH_6.json
go run ./cmd/benchreport --json >"$out"
echo "wrote $out"
