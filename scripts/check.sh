#!/bin/sh
# check.sh — the repo's verification gate. Everything the README and
# EXPERIMENTS.md claim (builds clean, tests pass, race-free) is enforced
# here; run it before every commit (or via `make check`).
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== OK"
