#!/bin/sh
# check.sh — the repo's verification gate. Everything the README and
# EXPERIMENTS.md claim (builds clean, tests pass, race-free) is enforced
# here; run it before every commit (or via `make check`).
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race -shuffle=on ./..."
go test -race -shuffle=on ./...

echo "== examples build (quickstart, monitoring, migration, loadbalance, statemgmt, fleet)"
go build ./examples/...

echo "== fleet gate: go test -run TestFleet -race ./internal/fleet"
go test -run TestFleet -race ./internal/fleet

echo "== watch gate: go test -run 'TestWatch' -race (watch, rpc, remote, fleet)"
go test -race -run 'TestWatch' ./internal/watch ./internal/rpc ./internal/drivers/remote ./internal/fleet

echo "== fleet smoke: 2 daemons, 4 domains, assert spread (examples/fleet exits non-zero on failure)"
go run ./examples/fleet -hosts 2 -domains 4 -drain=false >/dev/null

echo "== chaos gate: go test -race -run 'TestChaos' ./..."
go test -race -run 'TestChaos' ./...

echo "== qos gate: admission control, ACLs, noisy-tenant isolation"
go test -race -run 'TestQoS|TestChaosNoisyTenant' ./...

echo "== exposition lint: Prometheus format + scrape allocation gates"
go test -race -run 'TestExposition|TestScrapeAllocs|TestDomainCollector' ./internal/telemetry

echo "== bench smoke: every benchmark runs once (-benchtime=1x)"
go test . -run 'XXX' -bench . -benchtime=1x >/dev/null

echo "== T9 smoke: one scrape benchmark pass (-benchtime=1x)"
go test . -run 'XXX' -bench 'BenchmarkT9_Scrape' -benchtime=1x >/dev/null

echo "== T8 smoke: mega-fleet 100-host tier (-benchtime=1x)"
go test . -run 'XXX' -bench 'BenchmarkT8_MegaFleet/hosts-100/' -benchtime=1x >/dev/null

echo "== T10 smoke: watch propagation, both modes (-benchtime=1x)"
go test . -run 'XXX' -bench 'BenchmarkT10_WatchPropagation' -benchtime=1x >/dev/null

echo "== T11 smoke: QoS fast-path overhead + noisy neighbor (-benchtime=1x)"
go test . -run 'XXX' -bench 'BenchmarkT11_' -benchtime=1x >/dev/null

echo "== migrate gate: pipeline, streams, auto-converge, post-copy, chaos abort"
go test -race -run 'TestMigrat|TestPreCopy|TestThrottleLadder|TestChaosMigrateAbort|TestPostCopy' ./internal/migrate ./internal/hyper

echo "== T12 smoke: migration pipeline sweep + wire leg (-benchtime=1x)"
go test . -run 'XXX' -bench 'BenchmarkT12_Migration' -benchtime=1x >/dev/null

echo "== OK"
